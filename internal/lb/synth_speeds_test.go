package lb

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"ulba/internal/imbalance"
	"ulba/internal/mpisim"
)

// This file covers the heterogeneous-cluster axis (SynthConfig.Speeds) and
// the out-of-band WLI channel: the two engines must stay bit-identical
// under any speed vector, an all-ones vector must be indistinguishable from
// the homogeneous nil, LB steps must cut speed-proportional (non-uniform)
// partitions, and the incremental WLI trace must agree with the brute-force
// reference definition.

func speedsCfg(p, items, iters int, speeds []float64) SynthConfig {
	cfg := synthCfg(p, items, iters)
	cfg.Speeds = speeds
	return cfg
}

func TestSynthFastMatchesSimHeterogeneous(t *testing.T) {
	speedSets := map[string][]float64{
		"two-tier":   nil, // filled per P below
		"increasing": nil,
	}
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		speedSets["two-tier"] = make([]float64, p)
		speedSets["increasing"] = make([]float64, p)
		for r := 0; r < p; r++ {
			speedSets["two-tier"][r] = 1
			if r >= p/2 {
				speedSets["two-tier"][r] = 2.5
			}
			speedSets["increasing"][r] = 1 + 0.5*float64(r)
		}
		for name, speeds := range speedSets {
			t.Run(fmt.Sprintf("P=%d/%s", p, name), func(t *testing.T) {
				cfg := speedsCfg(p, 16*p+3, 40, speeds)
				mustMatchSim(t, cfg)
			})
		}
	}
}

func TestSynthFastMatchesSimHeterogeneousAcrossTriggers(t *testing.T) {
	factories := map[string]func() Trigger{
		"degradation": nil, // default
		"never":       func() Trigger { return Never{} },
		"periodic":    func() Trigger { return &Periodic{K: 7} },
		"menon":       func() Trigger { return NewMenonTau() },
		"wli":         func() Trigger { return &WLIThreshold{Threshold: 0.1} },
	}
	speeds := []float64{1, 4, 1, 2, 0.5, 1}
	for name, factory := range factories {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			cfg := speedsCfg(6, 96, 60, speeds)
			cfg.TriggerFactory = factory
			mustMatchSim(t, cfg)

			// And the weight table must not change a single bit.
			withTable := cfg
			withTable.Table = BuildWeightTable(cfg.Items, cfg.Iterations, cfg.Weight)
			mustMatchSim(t, withTable)
		})
	}
}

// An all-ones speed vector selects the same code path lengths as nil and
// must produce the exact result bits of the homogeneous cluster.
func TestSynthSpeedsAllOnesMatchesNil(t *testing.T) {
	cfg := synthCfg(5, 80, 50)
	hom, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Speeds = []float64{1, 1, 1, 1, 1}
	het, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hom, het) {
		t.Fatalf("all-ones speeds changed the result:\nnil:  %+v\nones: %+v", hom, het)
	}
	if pt := PerfectTime(cfg); pt != PerfectTime(synthCfg(5, 80, 50)) {
		t.Fatal("all-ones speeds changed PerfectTime")
	}
}

func TestSynthValidateRejectsBadSpeeds(t *testing.T) {
	for _, tc := range []struct {
		name   string
		speeds []float64
	}{
		{"wrong length", []float64{1, 1}},
		{"zero speed", []float64{1, 0, 1, 1}},
		{"negative speed", []float64{1, -2, 1, 1}},
		{"NaN speed", []float64{1, math.NaN(), 1, 1}},
		{"infinite speed", []float64{1, math.Inf(1), 1, 1}},
	} {
		cfg := speedsCfg(4, 64, 50, tc.speeds).Normalized()
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validation accepted speeds %v", tc.name, tc.speeds)
		}
	}
}

// On a heterogeneous cluster a LB step must cut a deliberately non-uniform
// partition: with uniform item weights, a rank running s times faster than
// the others ends up owning about s times their item count (Lastovetsky &
// Szustak's non-uniform optimum).
func TestSynthSpeedsCutNonUniformPartition(t *testing.T) {
	const p, items = 4, 400
	cfg := SynthConfig{
		P:          p,
		Items:      items,
		Iterations: 10,
		Weight:     func(int, int) float64 { return 1 },
		Cost:       mpisim.DefaultCostModel(),
		Speeds:     []float64{1, 1, 1, 5},
	}
	res, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, p)
	for r := 0; r < p; r++ {
		counts[r] = res.FinalBounds[r+1] - res.FinalBounds[r]
	}
	// Speed-proportional targets: 400 * [1,1,1,5]/8 = [50, 50, 50, 250].
	for r := 0; r < 3; r++ {
		if counts[r] < 45 || counts[r] > 55 {
			t.Fatalf("slow rank %d owns %d items, want about 50 (bounds %v)", r, counts[r], res.FinalBounds)
		}
	}
	if counts[3] < 240 {
		t.Fatalf("fast rank owns %d items, want about 250 (bounds %v)", counts[3], res.FinalBounds)
	}

	// The homogeneous cluster keeps the even split — the non-uniform cut
	// is the speed vector's doing, not the partitioner's.
	cfg.Speeds = nil
	hom, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if n := hom.FinalBounds[r+1] - hom.FinalBounds[r]; n != items/p {
			t.Fatalf("homogeneous rank %d owns %d items, want %d", r, n, items/p)
		}
	}
}

// PerfectTime on a heterogeneous cluster spreads each iteration's total
// work over the aggregate speed-scaled rate.
func TestPerfectTimeWithSpeeds(t *testing.T) {
	cfg := speedsCfg(4, 64, 30, []float64{1, 2, 3, 4}).Normalized()
	rate := 0.0
	for r := 0; r < cfg.P; r++ {
		rate += cfg.Cost.FLOPS * cfg.Speeds[r]
	}
	want := 0.0
	for i := 0; i < cfg.Iterations; i++ {
		sum := 0.0
		for j := 0; j < cfg.Items; j++ {
			sum += cfg.Weight(j, i)
		}
		want += sum * cfg.FlopPerUnit / rate
	}
	if got := PerfectTime(cfg); math.Abs(got-want) > 1e-12*want {
		t.Fatalf("PerfectTime = %v, want %v", got, want)
	}
	// A faster cluster has a strictly lower bound than the homogeneous one.
	hom := cfg
	hom.Speeds = nil
	if got, homT := PerfectTime(cfg), PerfectTime(hom); got >= homT {
		t.Fatalf("heterogeneous bound %v not below homogeneous %v", got, homT)
	}
}

// The WLI trace recorded by the engines must equal the brute-force
// reference definition (internal/imbalance.WLI over the per-rank compute
// seconds) on every iteration. The never trigger keeps the bounds at the
// initial even split, so the reference loads are computable independently.
func TestWLITraceMatchesBruteForce(t *testing.T) {
	for _, speeds := range [][]float64{nil, {1, 3, 1, 0.5, 2}} {
		cfg := speedsCfg(5, 85, 40, speeds).Normalized()
		cfg.TriggerFactory = func() Trigger { return Never{} }
		cfg.WarmupLB = -1
		res, err := RunSynth(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bounds := make([]int, cfg.P+1)
		for r := range bounds {
			bounds[r] = r * cfg.Items / cfg.P
		}
		loads := make([]float64, cfg.P)
		for i := 0; i < cfg.Iterations; i++ {
			for r := 0; r < cfg.P; r++ {
				sum := 0.0
				for j := bounds[r]; j < bounds[r+1]; j++ {
					sum += cfg.Weight(j, i)
				}
				denom := cfg.Cost.FLOPS
				if speeds != nil {
					denom *= speeds[r]
				}
				loads[r] = sum * cfg.FlopPerUnit / denom
			}
			want := imbalance.WLI(loads)
			if got := res.WLI[i]; math.Abs(got-want) > 1e-12*(1+want) {
				t.Fatalf("speeds %v iter %d: WLI %v, want brute-force %v", speeds, i, got, want)
			}
		}
		if res.MeanWLI() <= 0 {
			t.Fatalf("speeds %v: ramp workload has zero mean WLI", speeds)
		}
	}
}

// The WLI threshold trigger must actually fire on a skewed load and stay
// silent on a balanced one, end to end through the engine.
func TestWLIThresholdFiresOnSkew(t *testing.T) {
	cfg := synthCfg(4, 64, 40).Normalized() // ramp: first quarter grows
	cfg.TriggerFactory = func() Trigger { return &WLIThreshold{Threshold: 0.5} }
	cfg.WarmupLB = -1
	res, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LBIters) == 0 {
		t.Fatal("growing skew never crossed the WLI threshold")
	}

	flat := cfg
	flat.Weight = func(int, int) float64 { return 1 }
	flat.Table = nil
	balanced, err := RunSynth(flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(balanced.LBIters) != 0 {
		t.Fatalf("balanced load fired the WLI trigger at %v", balanced.LBIters)
	}
}
