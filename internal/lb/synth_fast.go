package lb

import (
	"math"

	"ulba/internal/partition"
	"ulba/internal/stats"
)

// This file implements the sequential fast engine behind RunSynth. The
// synthetic runner's rank body is entirely fixed — compute from a pure
// weight function, two scalar allreduces, and the centralized re-partition
// when the trigger fires — so instead of spawning P goroutines with
// mailboxes per scenario, the engine advances all P virtual clocks
// analytically through the exact message schedule the goroutine engine
// would execute. Every clock update mirrors one Send/Recv/Compute of the
// reference engine and every floating-point combine happens in the same
// order, so the result is bit-identical to RunSynthSim; the differential
// tests and FuzzSynthFastMatchesSim hold the two engines together.

// WeightTable pre-evaluates a scenario's weight function over the full
// (item, iteration) grid so the per-iteration compute phase reads a row
// instead of re-invoking the closure per item. Values are the exact
// float64s the Weight function returned, so a tabled run is bit-identical
// to an untabled one.
type WeightTable struct {
	Items      int
	Iterations int
	w          []float64 // row-major: w[iter*Items + item]
}

// BuildWeightTable evaluates weight over the grid in row-major order.
func BuildWeightTable(items, iterations int, weight func(item, iter int) float64) *WeightTable {
	t := &WeightTable{
		Items:      items,
		Iterations: iterations,
		w:          make([]float64, items*iterations),
	}
	for i := 0; i < iterations; i++ {
		row := t.w[i*items : (i+1)*items]
		for j := range row {
			row[j] = weight(j, i)
		}
	}
	return t
}

// Row returns the weights of all items at the given iteration. The slice
// aliases the table; callers must not modify it.
func (t *WeightTable) Row(iter int) []float64 {
	return t.w[iter*t.Items : (iter+1)*t.Items]
}

// tableRow returns the pre-evaluated weight row for iteration i, or nil if
// the config carries no table covering it.
func (c SynthConfig) tableRow(i int) []float64 {
	if c.Table == nil || c.Table.Items != c.Items || i >= c.Table.Iterations {
		return nil
	}
	return c.Table.Row(i)
}

// synthFast holds the per-scenario state of the fast engine: one virtual
// clock and compute-time accumulator per rank, plus scratch arrays reused
// across iterations so the steady-state loop allocates nothing.
type synthFast struct {
	cfg      SynthConfig
	p        int
	lat, bt  float64   // cost model: Latency, ByteTime
	denom    []float64 // per-rank FLOP/s rate (FLOPS, speed-scaled)
	clock    []float64
	computeT []float64
	vals     []float64 // per-rank input to the current allreduce
	acc      []float64 // per-rank accumulator during the reduce tree
	avail    []float64 // per-rank availAt of the in-flight tree message
	itemW    []float64 // root's gathered weight array during a LB step
	migAvail []float64 // per-transfer availAt during migration
	bounds   []int
}

// compute mirrors Proc.Compute on rank r.
func (f *synthFast) compute(r int, flop float64) {
	dt := flop / f.denom[r]
	f.clock[r] += dt
	f.computeT[r] += dt
}

// allreduce advances every rank's clock through one Allreduce of a single
// float64 — binomial-tree reduce to rank 0, then binomial-tree broadcast —
// and returns the folded result. Ranks are processed in decreasing order
// during the reduce (children complete before parents receive) and
// increasing order during the broadcast (parents send before children
// receive); partial results combine in exactly the mask-ascending order
// reduceInPlace combines them, so sums carry the same rounding.
func (f *synthFast) allreduce(sum bool) float64 {
	size := f.p
	if size == 1 {
		return f.vals[0]
	}
	const bytes = 8.0
	copy(f.acc, f.vals)
	for r := size - 1; r >= 0; r-- {
		for mask := 1; mask < size; mask <<= 1 {
			if r&mask != 0 {
				// Send the partial to parent r-mask and stop.
				f.avail[r] = f.clock[r] + f.lat + bytes*f.bt
				f.clock[r] += f.lat
				break
			}
			if c := r + mask; c < size {
				// Receive child c's partial and fold it in.
				if f.avail[c] > f.clock[r] {
					f.clock[r] = f.avail[c]
				}
				f.clock[r] += f.lat
				if sum {
					f.acc[r] += f.acc[c]
				} else if f.acc[c] > f.acc[r] {
					f.acc[r] = f.acc[c]
				}
			}
		}
	}
	f.bcastClocks(bytes)
	return f.acc[0]
}

// bcastClocks advances every rank's clock through one binomial-tree
// broadcast from rank 0 of a payload of the given wire size.
func (f *synthFast) bcastClocks(bytes float64) {
	size := f.p
	for r := 0; r < size; r++ {
		if r != 0 {
			// Receive from the parent (which, being a lower rank, has
			// already stamped avail[r]).
			if f.avail[r] > f.clock[r] {
				f.clock[r] = f.avail[r]
			}
			f.clock[r] += f.lat
		}
		startMask := 1
		for startMask <= r {
			startMask <<= 1
		}
		for mask := startMask; r+mask < size; mask <<= 1 {
			f.avail[r+mask] = f.clock[r] + f.lat + bytes*f.bt
			f.clock[r] += f.lat
		}
	}
}

// computePhase fills f.vals with each rank's compute seconds at iteration i
// (via synthRankSeconds, the same expression the rank bodies charge) and
// advances the clocks through the compute phase. After it returns, f.vals
// holds the per-rank dts — the allreduce input and the WLI source.
func (f *synthFast) computePhase(i int) {
	f.cfg.synthRankSeconds(f.vals, f.bounds, i)
	for r := 0; r < f.p; r++ {
		dt := f.vals[r]
		f.clock[r] += dt
		f.computeT[r] += dt
	}
}

// rebalance advances every clock through one centralized LB step — linear
// gather of [lo, weights...] into rank 0, the partition compute, the
// bounds broadcast, the migration plan, and the per-rank rebuild — and
// installs the new bounds. It mirrors rebalanceSynth message for message.
func (f *synthFast) rebalance(iter int) {
	cfg := &f.cfg
	size := f.p

	// Gather: non-roots send [lo, weights...], root receives in ascending
	// rank order. The wire carries 8 bytes per float64.
	for r := 1; r < size; r++ {
		bytes := 8.0 * float64(1+f.bounds[r+1]-f.bounds[r])
		f.avail[r] = f.clock[r] + f.lat + bytes*f.bt
		f.clock[r] += f.lat
	}
	for r := 1; r < size; r++ {
		if f.avail[r] > f.clock[0] {
			f.clock[0] = f.avail[r]
		}
		f.clock[0] += f.lat
	}

	// Root recomputes the full weight array. The gathered wire values are
	// lossless float64 round trips of the same pure function, so reading
	// the function (or table) directly yields the identical bits.
	row := cfg.tableRow(iter)
	if row != nil {
		copy(f.itemW, row)
	} else {
		for j := 0; j < cfg.Items; j++ {
			f.itemW[j] = cfg.Weight(j, iter)
		}
	}
	targets := cfg.synthTargets(stats.Sum(f.itemW))
	newBounds := partition.Stripes(f.itemW, targets)
	newBounds = partition.EnsureMinCols(newBounds, 1)
	f.compute(0, cfg.PartitionFlopPerItem*float64(cfg.Items))

	// Broadcast of the packed bounds: 8 bytes per int, P+1 ints.
	f.bcastClocks(8.0 * float64(len(newBounds)))

	// Migration along the shared deterministic plan: sends in plan order
	// (charging the pack compute), then receives in plan order. A
	// (sender, receiver) pair repeating in the plan matches FIFO on both
	// sides, exactly like the tagged mailbox streams.
	plan := partition.Transfers(f.bounds, newBounds)
	f.migAvail = f.migAvail[:0]
	for _, tr := range plan {
		cnt := tr.Hi - tr.Lo
		f.compute(tr.From, 0.5*cfg.MigrateFlopPerItem*float64(cnt))
		f.migAvail = append(f.migAvail, f.clock[tr.From]+f.lat+float64(cnt*cfg.ItemBytes)*f.bt)
		f.clock[tr.From] += f.lat
	}
	for k, tr := range plan {
		r := tr.To
		if f.migAvail[k] > f.clock[r] {
			f.clock[r] = f.migAvail[k]
		}
		f.clock[r] += f.lat
		f.compute(r, cfg.MigrateFlopPerItem*float64(tr.Hi-tr.Lo))
	}

	// Every rank rebuilds its local structures over its new range.
	copy(f.bounds, newBounds)
	for r := 0; r < size; r++ {
		f.compute(r, cfg.RebuildFlopPerItem*float64(f.bounds[r+1]-f.bounds[r]))
	}
}

// runSynthFast executes the scenario on the sequential fast engine. cfg
// must already be normalized and validated.
func runSynthFast(cfg SynthConfig) (SynthResult, error) {
	p := cfg.P
	f := &synthFast{
		cfg:      cfg,
		p:        p,
		lat:      cfg.Cost.Latency,
		bt:       cfg.Cost.ByteTime,
		denom:    make([]float64, p),
		clock:    make([]float64, p),
		computeT: make([]float64, p),
		vals:     make([]float64, p),
		acc:      make([]float64, p),
		avail:    make([]float64, p),
		itemW:    make([]float64, cfg.Items),
		bounds:   make([]int, p+1),
	}
	for r := 0; r < p; r++ {
		f.denom[r] = cfg.denom(r)
	}
	for i := range f.bounds {
		f.bounds[i] = i * cfg.Items / p
	}

	var trig Trigger
	if cfg.TriggerFactory != nil {
		trig = cfg.TriggerFactory()
	} else {
		trig = NewDegradation()
	}
	imbObs, observesWLI := trig.(ImbalanceObserver)

	iterTimes := make([]float64, cfg.Iterations)
	computeShare := make([]float64, cfg.Iterations)
	wliTrace := make([]float64, cfg.Iterations)
	var lbIters []int
	var lbCosts []float64
	var lbCostAvg stats.Running
	prevMax := 0.0

	for i := 0; i < cfg.Iterations; i++ {
		f.computePhase(i)
		// f.vals holds the per-rank compute seconds until the clocks
		// overwrite it for the max-allreduce below; the WLI reads it
		// here, out-of-band, exactly like the rank bodies recompute it.
		wli := wliOf(f.vals)
		computeSum := f.allreduce(true)
		for r := 0; r < p; r++ {
			f.vals[r] = f.clock[r]
		}
		maxClock := f.allreduce(false)
		iterTime := maxClock - prevMax
		prevMax = maxClock
		trig.Observe(iterTime)
		if observesWLI {
			imbObs.ObserveImbalance(wli)
		}
		iterTimes[i] = iterTime
		computeShare[i] = computeSum
		wliTrace[i] = wli

		threshold := math.Inf(1)
		if lbCostAvg.N() > 0 {
			threshold = lbCostAvg.Mean()
		}
		fire := i == cfg.WarmupLB || trig.ShouldFire(threshold)
		if !fire {
			continue
		}

		f.rebalance(i)
		for r := 0; r < p; r++ {
			f.vals[r] = f.clock[r]
		}
		lbEnd := f.allreduce(false)
		cost := lbEnd - maxClock
		lbCostAvg.Add(cost)
		prevMax = lbEnd
		trig.Reset()
		lbIters = append(lbIters, i)
		lbCosts = append(lbCosts, cost)
	}

	res := SynthResult{
		IterTimes:   iterTimes,
		WLI:         wliTrace,
		LBIters:     lbIters,
		LBCosts:     lbCosts,
		FinalBounds: f.bounds,
	}
	for _, c := range f.clock {
		if c > res.TotalTime {
			res.TotalTime = c
		}
	}
	res.Usage = make([]float64, cfg.Iterations)
	for i := range res.Usage {
		if iterTimes[i] > 0 {
			res.Usage[i] = stats.Clamp(computeShare[i]/(float64(p)*iterTimes[i]), 0, 1)
		}
	}
	if len(lbCosts) > 0 {
		res.AvgLBCost = stats.Mean(lbCosts)
	}
	res.ComputeTime = f.computeT
	return res, nil
}
