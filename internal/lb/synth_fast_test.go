package lb

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"ulba/internal/imbalance"
	"ulba/internal/stats"
)

// The fast engine's contract is bit-identity with the message-passing
// reference engine: every field of SynthResult, including every float64
// bit, must match reflect.DeepEqual across both engines for any valid
// configuration. These tests sweep the structural axes (world size
// including 1, uneven item counts, trigger kinds, disabled warmup, weight
// tables) and then fuzz the remaining shape space.

// mustMatchSim runs both engines on cfg and fails unless the results are
// deeply equal.
func mustMatchSim(t *testing.T, cfg SynthConfig) {
	t.Helper()
	fast, err := RunSynth(cfg)
	if err != nil {
		t.Fatalf("fast engine: %v", err)
	}
	sim, err := RunSynthSim(cfg)
	if err != nil {
		t.Fatalf("sim engine: %v", err)
	}
	if !reflect.DeepEqual(fast, sim) {
		t.Fatalf("engines diverged:\nfast: %+v\nsim:  %+v", fast, sim)
	}
}

func TestSynthFastMatchesSimAcrossShapes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			cfg := synthCfg(p, 16*p+3, 40) // uneven: items not a multiple of P
			mustMatchSim(t, cfg)
		})
	}
}

func TestSynthFastMatchesSimAcrossTriggers(t *testing.T) {
	factories := map[string]func() Trigger{
		"degradation": nil, // default
		"never":       func() Trigger { return Never{} },
		"periodic":    func() Trigger { return &Periodic{K: 7} },
		"menon":       func() Trigger { return NewMenonTau() },
	}
	for name, factory := range factories {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			cfg := synthCfg(6, 96, 60)
			cfg.TriggerFactory = factory
			mustMatchSim(t, cfg)
		})
	}
}

func TestSynthFastMatchesSimNoWarmup(t *testing.T) {
	cfg := synthCfg(4, 64, 30)
	cfg.WarmupLB = -1
	mustMatchSim(t, cfg)
}

func TestSynthFastMatchesSimWithTable(t *testing.T) {
	cfg := synthCfg(5, 80, 50)
	cfg.Table = BuildWeightTable(cfg.Items, cfg.Iterations, cfg.Weight)
	mustMatchSim(t, cfg)

	// And a tabled run must be bit-identical to the untabled run.
	withTable, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Table = nil
	without, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withTable, without) {
		t.Fatal("weight table changed the result bits")
	}
}

func TestWeightTableRowsAreExact(t *testing.T) {
	w := rampWeight(32)
	tab := BuildWeightTable(32, 10, w)
	for i := 0; i < 10; i++ {
		row := tab.Row(i)
		if len(row) != 32 {
			t.Fatalf("row %d has %d items", i, len(row))
		}
		for j, got := range row {
			if got != w(j, i) {
				t.Fatalf("table[%d][%d] = %v, want %v", i, j, got, w(j, i))
			}
		}
	}
}

func TestSynthValidateRejectsMismatchedTable(t *testing.T) {
	cfg := synthCfg(4, 64, 50).Normalized()
	cfg.Table = BuildWeightTable(32, 50, cfg.Weight) // wrong item count
	if err := cfg.Validate(); err == nil {
		t.Fatal("mismatched table items should fail validation")
	}
	cfg.Table = BuildWeightTable(64, 10, cfg.Weight) // too few iterations
	if err := cfg.Validate(); err == nil {
		t.Fatal("short table should fail validation")
	}
	cfg.Table = BuildWeightTable(64, 50, cfg.Weight)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("matching table rejected: %v", err)
	}
}

func TestPerfectTimeUsesTableBitIdentically(t *testing.T) {
	cfg := synthCfg(4, 64, 50)
	without := PerfectTime(cfg)
	cfg.Table = BuildWeightTable(cfg.Items, cfg.Iterations, cfg.Weight)
	if with := PerfectTime(cfg); with != without {
		t.Fatalf("PerfectTime with table %v != without %v", with, without)
	}
}

// FuzzSynthFastMatchesSim drives both engines over fuzzer-chosen scenario
// shapes, weight dynamics (including the exemplar workload families:
// drifting rates, miniFE-style stationary block skew, AMR-style moving
// refinement fronts, and exact-target-imbalance block draws), trigger
// policies, and heterogeneous speed vectors — and requires bit-identical
// results.
func FuzzSynthFastMatchesSim(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(3), uint8(30), false, false, uint8(0), uint8(0))
	f.Add(uint64(7), uint8(1), uint8(1), uint8(10), true, false, uint8(0), uint8(0))
	f.Add(uint64(42), uint8(9), uint8(5), uint8(50), false, false, uint8(0), uint8(0))
	f.Add(uint64(3), uint8(5), uint8(4), uint8(40), false, true, uint8(1), uint8(1))
	f.Add(uint64(11), uint8(7), uint8(6), uint8(35), true, true, uint8(2), uint8(4))
	f.Add(uint64(19), uint8(3), uint8(2), uint8(25), false, true, uint8(3), uint8(2))
	f.Add(uint64(23), uint8(6), uint8(7), uint8(45), true, false, uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, p8, perPE8, iters8 uint8, table, het bool, shape, trig uint8) {
		p := 1 + int(p8)%12
		items := p * (1 + int(perPE8)%8)
		iters := 2 + int(iters8)%60
		rng := stats.NewRNG(seed)
		cfg := SynthConfig{
			P:          p,
			Items:      items,
			Iterations: iters,
			Weight:     fuzzWeight(int(shape)%4, rng, p, items),
			Cost:       synthCfg(p, items, iters).Cost,
		}
		switch int(trig) % 4 {
		case 1:
			cfg.TriggerFactory = func() Trigger { return Never{} }
		case 2:
			k := 2 + int(seed%9)
			cfg.TriggerFactory = func() Trigger { return &Periodic{K: k} }
		case 3:
			th := 0.05 + rng.Float64()*0.5
			cfg.TriggerFactory = func() Trigger { return &WLIThreshold{Threshold: th} }
		}
		if het {
			speeds := make([]float64, p)
			for r := range speeds {
				speeds[r] = 0.25 + rng.Float64()*4
			}
			cfg.Speeds = speeds
		}
		if table {
			cfg.Table = BuildWeightTable(items, iters, cfg.Weight)
		}
		mustMatchSim(t, cfg)
	})
}

// fuzzWeight builds a pure weight function in one of the exemplar workload
// families. Every random draw is frozen up front so the function stays
// pure, as the Workload contract requires.
func fuzzWeight(shape int, rng *stats.RNG, p, items int) func(int, int) float64 {
	switch shape {
	case 1: // miniFE-style stationary per-block skew
		blockW := make([]float64, p)
		for b := range blockW {
			blockW[b] = 0.5 + rng.Float64()*2
		}
		perPE := items / p
		return func(item, _ int) float64 {
			return blockW[(item/perPE)%p]
		}
	case 2: // AMR-style moving refinement front
		levels := 1 + int(rng.Float64()*6)
		center0 := rng.Float64()
		drift := rng.Float64() * 0.02
		return func(item, iter int) float64 {
			pos := (float64(item) + 0.5) / float64(items)
			center := center0 + drift*float64(iter)
			center -= math.Floor(center)
			return imbalance.LevelWeight(imbalance.FrontLevel(pos, center, levels))
		}
	case 3: // exact-target-imbalance block draw, redrawn every period
		target := 1 + rng.Float64()*(float64(p)-1)*0.99
		seed := rng.Uint64()
		period := 4 + int(rng.Float64()*16)
		perPE := items / p
		var cache targetFuzzCache
		return func(item, iter int) float64 {
			return cache.weights(iter/period, p, target, seed)[(item/perPE)%p]
		}
	default: // drifting per-item growth rates
		rates := make([]float64, items)
		for j := range rates {
			rates[j] = rng.Float64() * 0.2
		}
		return func(item, iter int) float64 {
			return 1 + rates[item]*float64(iter)
		}
	}
}

// targetFuzzCache memoizes per-draw TargetPartition block weights so the
// fuzz weight function is pure and cheap under both engines.
type targetFuzzCache struct {
	mu    sync.Mutex
	draws map[int][]float64
}

func (c *targetFuzzCache) weights(draw, p int, target float64, seed uint64) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.draws[draw]; ok {
		return w
	}
	if c.draws == nil {
		c.draws = make(map[int][]float64)
	}
	w, err := imbalance.TargetPartition(p, 1, target, stats.Mix64(seed^uint64(draw)*0x9e3779b97f4a7c15))
	if err != nil {
		panic(err)
	}
	c.draws[draw] = w
	return w
}
