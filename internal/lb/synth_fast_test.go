package lb

import (
	"fmt"
	"reflect"
	"testing"

	"ulba/internal/stats"
)

// The fast engine's contract is bit-identity with the message-passing
// reference engine: every field of SynthResult, including every float64
// bit, must match reflect.DeepEqual across both engines for any valid
// configuration. These tests sweep the structural axes (world size
// including 1, uneven item counts, trigger kinds, disabled warmup, weight
// tables) and then fuzz the remaining shape space.

// mustMatchSim runs both engines on cfg and fails unless the results are
// deeply equal.
func mustMatchSim(t *testing.T, cfg SynthConfig) {
	t.Helper()
	fast, err := RunSynth(cfg)
	if err != nil {
		t.Fatalf("fast engine: %v", err)
	}
	sim, err := RunSynthSim(cfg)
	if err != nil {
		t.Fatalf("sim engine: %v", err)
	}
	if !reflect.DeepEqual(fast, sim) {
		t.Fatalf("engines diverged:\nfast: %+v\nsim:  %+v", fast, sim)
	}
}

func TestSynthFastMatchesSimAcrossShapes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			cfg := synthCfg(p, 16*p+3, 40) // uneven: items not a multiple of P
			mustMatchSim(t, cfg)
		})
	}
}

func TestSynthFastMatchesSimAcrossTriggers(t *testing.T) {
	factories := map[string]func() Trigger{
		"degradation": nil, // default
		"never":       func() Trigger { return Never{} },
		"periodic":    func() Trigger { return &Periodic{K: 7} },
		"menon":       func() Trigger { return NewMenonTau() },
	}
	for name, factory := range factories {
		name, factory := name, factory
		t.Run(name, func(t *testing.T) {
			cfg := synthCfg(6, 96, 60)
			cfg.TriggerFactory = factory
			mustMatchSim(t, cfg)
		})
	}
}

func TestSynthFastMatchesSimNoWarmup(t *testing.T) {
	cfg := synthCfg(4, 64, 30)
	cfg.WarmupLB = -1
	mustMatchSim(t, cfg)
}

func TestSynthFastMatchesSimWithTable(t *testing.T) {
	cfg := synthCfg(5, 80, 50)
	cfg.Table = BuildWeightTable(cfg.Items, cfg.Iterations, cfg.Weight)
	mustMatchSim(t, cfg)

	// And a tabled run must be bit-identical to the untabled run.
	withTable, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Table = nil
	without, err := RunSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withTable, without) {
		t.Fatal("weight table changed the result bits")
	}
}

func TestWeightTableRowsAreExact(t *testing.T) {
	w := rampWeight(32)
	tab := BuildWeightTable(32, 10, w)
	for i := 0; i < 10; i++ {
		row := tab.Row(i)
		if len(row) != 32 {
			t.Fatalf("row %d has %d items", i, len(row))
		}
		for j, got := range row {
			if got != w(j, i) {
				t.Fatalf("table[%d][%d] = %v, want %v", i, j, got, w(j, i))
			}
		}
	}
}

func TestSynthValidateRejectsMismatchedTable(t *testing.T) {
	cfg := synthCfg(4, 64, 50).Normalized()
	cfg.Table = BuildWeightTable(32, 50, cfg.Weight) // wrong item count
	if err := cfg.Validate(); err == nil {
		t.Fatal("mismatched table items should fail validation")
	}
	cfg.Table = BuildWeightTable(64, 10, cfg.Weight) // too few iterations
	if err := cfg.Validate(); err == nil {
		t.Fatal("short table should fail validation")
	}
	cfg.Table = BuildWeightTable(64, 50, cfg.Weight)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("matching table rejected: %v", err)
	}
}

func TestPerfectTimeUsesTableBitIdentically(t *testing.T) {
	cfg := synthCfg(4, 64, 50)
	without := PerfectTime(cfg)
	cfg.Table = BuildWeightTable(cfg.Items, cfg.Iterations, cfg.Weight)
	if with := PerfectTime(cfg); with != without {
		t.Fatalf("PerfectTime with table %v != without %v", with, without)
	}
}

// FuzzSynthFastMatchesSim drives both engines over fuzzer-chosen scenario
// shapes and weight dynamics and requires bit-identical results.
func FuzzSynthFastMatchesSim(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(3), uint8(30), false)
	f.Add(uint64(7), uint8(1), uint8(1), uint8(10), true)
	f.Add(uint64(42), uint8(9), uint8(5), uint8(50), false)
	f.Fuzz(func(t *testing.T, seed uint64, p8, perPE8, iters8 uint8, table bool) {
		p := 1 + int(p8)%12
		items := p * (1 + int(perPE8)%8)
		iters := 2 + int(iters8)%60
		rng := stats.NewRNG(seed)
		// A per-item growth-rate vector makes load drift apart so the
		// trigger actually fires; values are frozen up front so Weight is
		// pure.
		rates := make([]float64, items)
		for j := range rates {
			rates[j] = rng.Float64() * 0.2
		}
		cfg := SynthConfig{
			P:          p,
			Items:      items,
			Iterations: iters,
			Weight: func(item, iter int) float64 {
				return 1 + rates[item]*float64(iter)
			},
			Cost: synthCfg(p, items, iters).Cost,
		}
		if table {
			cfg.Table = BuildWeightTable(items, iters, cfg.Weight)
		}
		mustMatchSim(t, cfg)
	})
}
