package lb

import (
	"fmt"
	"math"

	"ulba/internal/mpisim"
	"ulba/internal/partition"
	"ulba/internal/stats"
)

// SynthConfig parameterizes one synthetic scenario run: an iterative BSP
// application whose load is a pure weight function over a 1D array of work
// items, executed on the simulated cluster under a runtime trigger. It is
// the runtime counterpart of Config for workloads that are not the erosion
// application: the scenario engine of the public package binds a Workload
// to this configuration.
type SynthConfig struct {
	P          int // number of PEs
	Items      int // total work items spread over the PEs; >= P
	Iterations int // gamma

	// Weight returns the workload weight (in work units) of item j at
	// iteration i. It must be a pure function of (j, i) — independent of
	// which PE owns the item — so the application dynamics are
	// bit-identical across partitionings and LB policies, exactly like
	// the erosion application's counter-based randomness.
	Weight func(item, iter int) float64

	Cost mpisim.CostModel

	// Speeds optionally makes the cluster heterogeneous: PE r computes at
	// Cost.FLOPS*Speeds[r] FLOP/s, and LB steps cut speed-proportional
	// stripe targets instead of even ones — on a heterogeneous cluster the
	// optimum partition is deliberately non-uniform (Lastovetsky &
	// Szustak). Nil selects the homogeneous cluster; non-nil must have
	// length P with positive finite entries. A vector of all 1s is
	// bit-identical to nil.
	Speeds []float64

	// FlopPerUnit is the compute charged per weight unit per iteration.
	// The default (0 value) is 1e6 FLOP, which at the default cost model
	// makes one unit of weight cost one millisecond.
	FlopPerUnit float64

	// ItemBytes is the wire size of one migrated item's state. The
	// default (0 value) is 4096 bytes.
	ItemBytes int

	// MigrateFlopPerItem is the compute charged per migrated item for
	// packing (sender, half) and unpacking (receiver, full), mirroring
	// the erosion runner's migration accounting. Default: 1e5 FLOP.
	MigrateFlopPerItem float64

	// RebuildFlopPerItem is the compute every PE pays per local item
	// after a LB step to rebuild its data structures — the fixed,
	// alpha-independent component of the LB cost C. Default: 2e5 FLOP.
	RebuildFlopPerItem float64

	// PartitionFlopPerItem is the compute charged to the main PE per
	// item at each LB step: the centralized stripe technique scans the
	// gathered item weights. Default: 64 FLOP.
	PartitionFlopPerItem float64

	// TriggerFactory builds the per-rank trigger state machine deciding
	// when the balancer fires. Every rank calls it once; the triggers
	// must be deterministic (LB decisions are collective). Nil selects
	// the adaptive degradation rule.
	TriggerFactory func() Trigger

	// WarmupLB is the iteration of the forced first LB call, which seeds
	// the average-LB-cost estimate adaptive triggers need. Negative
	// disables the warmup call. Default (0 value) means 1.
	WarmupLB int

	// Table optionally pre-evaluates Weight over the scenario's full
	// (item, iteration) grid (see BuildWeightTable). When present and
	// matching the scenario dimensions, RunSynth and PerfectTime read
	// table rows instead of re-invoking Weight per item — a pure lookup
	// of the identical float64s, so results are bit-for-bit unchanged.
	Table *WeightTable
}

// Normalized returns the config with defaults applied.
func (c SynthConfig) Normalized() SynthConfig {
	if c.FlopPerUnit == 0 {
		c.FlopPerUnit = 1e6
	}
	if c.ItemBytes == 0 {
		c.ItemBytes = 4096
	}
	if c.MigrateFlopPerItem == 0 {
		c.MigrateFlopPerItem = 1e5
	}
	if c.RebuildFlopPerItem == 0 {
		c.RebuildFlopPerItem = 2e5
	}
	if c.PartitionFlopPerItem == 0 {
		c.PartitionFlopPerItem = 64
	}
	if c.WarmupLB == 0 {
		c.WarmupLB = 1
	}
	return c
}

// Validate checks the configuration.
func (c SynthConfig) Validate() error {
	if c.P <= 0 {
		return fmt.Errorf("lb: synth P = %d must be positive", c.P)
	}
	if c.Items < c.P {
		return fmt.Errorf("lb: synth needs at least one item per PE: %d items for %d PEs", c.Items, c.P)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("lb: synth Iterations = %d must be positive", c.Iterations)
	}
	if c.Weight == nil {
		return fmt.Errorf("lb: synth Weight function is nil")
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	if c.FlopPerUnit < 0 || c.ItemBytes < 0 || c.MigrateFlopPerItem < 0 ||
		c.RebuildFlopPerItem < 0 || c.PartitionFlopPerItem < 0 {
		return fmt.Errorf("lb: synth cost knobs must be non-negative")
	}
	if c.WarmupLB >= c.Iterations {
		return fmt.Errorf("lb: synth WarmupLB = %d beyond the run of %d iterations", c.WarmupLB, c.Iterations)
	}
	if c.Speeds != nil {
		if len(c.Speeds) != c.P {
			return fmt.Errorf("lb: synth Speeds has %d entries for %d PEs", len(c.Speeds), c.P)
		}
		for r, s := range c.Speeds {
			if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return fmt.Errorf("lb: synth Speeds[%d] = %g must be positive and finite", r, s)
			}
		}
	}
	if c.Table != nil && (c.Table.Items != c.Items || c.Table.Iterations < c.Iterations) {
		return fmt.Errorf("lb: synth weight table is %dx%d, scenario needs %dx%d",
			c.Table.Items, c.Table.Iterations, c.Items, c.Iterations)
	}
	return nil
}

// SynthResult is the measured per-iteration timeline of one scenario run.
type SynthResult struct {
	TotalTime   float64   // final wall time (max virtual clock), seconds
	IterTimes   []float64 // shared per-iteration wall time (excluding LB steps)
	Usage       []float64 // average PE usage per iteration, in [0,1]
	WLI         []float64 // per-iteration weighted load imbalance (max-avg)/avg
	LBIters     []int     // iterations at which the balancer ran
	LBCosts     []float64 // measured cost of each LB step, seconds
	AvgLBCost   float64   // mean of LBCosts (0 if none)
	FinalBounds []int     // final item-range boundaries, len P+1
	ComputeTime []float64 // per-rank total compute seconds
}

// LBCount returns the number of LB invocations.
func (r SynthResult) LBCount() int { return len(r.LBIters) }

// MeanUsage returns the run-average PE usage.
func (r SynthResult) MeanUsage() float64 { return stats.Mean(r.Usage) }

// MeanWLI returns the run-average weighted load imbalance.
func (r SynthResult) MeanWLI() float64 { return stats.Mean(r.WLI) }

// denom returns the FLOP-per-second rate of rank r: the reference FLOPS
// scaled by the rank's speed. With nil Speeds it is exactly Cost.FLOPS, so
// homogeneous configs keep their historical bit patterns (x*1.0 == x would
// too, but the branch makes the contract explicit).
func (c SynthConfig) denom(r int) float64 {
	if c.Speeds == nil {
		return c.Cost.FLOPS
	}
	return c.Cost.FLOPS * c.Speeds[r]
}

// synthRankSeconds fills dts[r] with rank r's compute seconds at iteration i
// under bounds: the weight sum over the owned range in ascending item order,
// times FlopPerUnit, divided by the rank's FLOP/s rate — exactly the
// expression the engines charge in the compute phase, so the out-of-band
// recomputation reproduces the measured times bit for bit. Any rank can run
// it for all ranks because the weight function is pure.
func (c SynthConfig) synthRankSeconds(dts []float64, bounds []int, i int) {
	row := c.tableRow(i)
	for r := range dts {
		flop := 0.0
		if row != nil {
			for _, w := range row[bounds[r]:bounds[r+1]] {
				flop += w
			}
		} else {
			for j := bounds[r]; j < bounds[r+1]; j++ {
				flop += c.Weight(j, i)
			}
		}
		flop *= c.FlopPerUnit
		dts[r] = flop / c.denom(r)
	}
}

// synthTargets returns the stripe targets of one LB step: even shares on the
// homogeneous cluster, speed-proportional shares on a heterogeneous one —
// equalizing compute time rather than work.
func (c SynthConfig) synthTargets(wtot float64) []float64 {
	if c.Speeds == nil {
		return partition.EvenTargets(wtot, c.P)
	}
	return partition.ProportionalTargets(wtot, c.Speeds)
}

// wliOf returns the weighted load imbalance (max-avg)/avg of the per-rank
// compute seconds — GAMER's WLI: 0 is perfect balance, 1.0 means the
// slowest rank takes twice the average. The sum folds in ascending rank
// order so both engines produce the same bits.
func wliOf(dts []float64) float64 {
	sum, max := 0.0, 0.0
	for _, dt := range dts {
		sum += dt
		if dt > max {
			max = dt
		}
	}
	avg := sum / float64(len(dts))
	if avg == 0 {
		return 0
	}
	return (max - avg) / avg
}

// PerfectTime returns the perfect-knowledge lower bound on the scenario's
// total time: every iteration's total workload spread perfectly over the
// PEs — evenly on a homogeneous cluster, speed-proportionally on a
// heterogeneous one — with free balancing and free communication. No policy,
// reactive or anticipating, can beat it, which makes it the natural
// denominator for scenario efficiency.
func PerfectTime(cfg SynthConfig) float64 {
	cfg = cfg.Normalized()
	// The machine's aggregate FLOP/s. The homogeneous expression is kept
	// verbatim so existing results stay bit-identical.
	rate := float64(cfg.P) * cfg.Cost.FLOPS
	if cfg.Speeds != nil {
		rate = 0
		for r := range cfg.Speeds {
			rate += cfg.denom(r)
		}
	}
	total := 0.0
	for i := 0; i < cfg.Iterations; i++ {
		sum := 0.0
		if row := cfg.tableRow(i); row != nil {
			for _, w := range row {
				sum += w
			}
		} else {
			for j := 0; j < cfg.Items; j++ {
				sum += cfg.Weight(j, i)
			}
		}
		total += sum * cfg.FlopPerUnit / rate
	}
	return total
}

// RunSynth executes the synthetic scenario on cfg.P simulated PEs and
// returns the measured timeline. Runs are fully deterministic: same config,
// same result. The structure mirrors Run: a BSP iteration loop whose
// compute phase is driven by the weight function, the shared max-allreduce
// iteration clock feeding the trigger, and a centralized even re-partition
// (gather weights, cut stripes on the main PE, broadcast, migrate along the
// deterministic transfer plan) whenever the trigger fires.
//
// The synthetic rank body is entirely fixed, so RunSynth executes on the
// sequential fast engine (synth_fast.go), which advances all P virtual
// clocks through the same message schedule without spawning goroutines.
// RunSynthSim is the message-passing reference engine; the two are held
// bit-identical by differential tests.
func RunSynth(cfg SynthConfig) (SynthResult, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return SynthResult{}, err
	}
	return runSynthFast(cfg)
}

// RunSynthSim executes the synthetic scenario on the message-passing
// engine: one goroutine per simulated PE over tagged mailboxes. It is the
// executable specification the fast engine is tested against, and produces
// bit-identical results.
func RunSynthSim(cfg SynthConfig) (SynthResult, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return SynthResult{}, err
	}
	p := cfg.P

	// Out-of-band metric stores; each rank writes disjoint slots.
	iterTimes := make([]float64, cfg.Iterations)
	computeShare := make([]float64, cfg.Iterations) // filled by rank 0 from allreduce
	wliTrace := make([]float64, cfg.Iterations)     // filled by rank 0, out-of-band
	var lbIters []int
	var lbCosts []float64
	var finalBounds []int

	clocks, allStats, err := mpisim.RunCollect(p, cfg.Cost, func(proc *mpisim.Proc) error {
		rank := proc.Rank()
		if cfg.Speeds != nil {
			proc.SetSpeed(cfg.Speeds[rank])
		}

		// Initial partition: an even split by item count, the analogue
		// of one stripe per PE. Free of charge: the data starts in
		// place.
		bounds := make([]int, p+1)
		for i := range bounds {
			bounds[i] = i * cfg.Items / p
		}

		var trig Trigger
		if cfg.TriggerFactory != nil {
			trig = cfg.TriggerFactory()
		} else {
			trig = NewDegradation()
		}
		imbObs, observesWLI := trig.(ImbalanceObserver)
		dts := make([]float64, p) // scratch for the out-of-band WLI recomputation

		var lbCostAvg stats.Running
		prevMax := 0.0

		for i := 0; i < cfg.Iterations; i++ {
			// Compute phase: cost proportional to the weight of the
			// items owned at this iteration.
			flop := 0.0
			for j := bounds[rank]; j < bounds[rank+1]; j++ {
				flop += cfg.Weight(j, i)
			}
			flop *= cfg.FlopPerUnit
			proc.Compute(flop)

			// Collective bookkeeping: the compute share for the
			// usage trace, and the shared iteration clock. The
			// max-allreduce doubles as the BSP iteration barrier.
			computeSum := proc.AllreduceSum(flop / cfg.denom(rank))
			maxClock := proc.AllreduceMax(proc.Clock())
			iterTime := maxClock - prevMax
			prevMax = maxClock
			trig.Observe(iterTime)

			// The weighted load imbalance of this iteration,
			// recomputed out-of-band from the pure weight function:
			// any rank knows every rank's load at zero simulated
			// cost, so no extra collective perturbs the timeline.
			var wli float64
			if rank == 0 || observesWLI {
				cfg.synthRankSeconds(dts, bounds, i)
				wli = wliOf(dts)
			}
			if observesWLI {
				imbObs.ObserveImbalance(wli)
			}

			if rank == 0 {
				iterTimes[i] = iterTime
				computeShare[i] = computeSum
				wliTrace[i] = wli
			}

			// LB decision: identical on every rank because all the
			// inputs are shared collective results.
			threshold := math.Inf(1)
			if lbCostAvg.N() > 0 {
				threshold = lbCostAvg.Mean()
			}
			fire := i == cfg.WarmupLB || trig.ShouldFire(threshold)
			if !fire {
				continue
			}

			// ---- LB step: centralized even re-partition ----
			bounds = rebalanceSynth(proc, bounds, i, cfg)
			lbEnd := proc.AllreduceMax(proc.Clock())
			cost := lbEnd - maxClock
			lbCostAvg.Add(cost)
			prevMax = lbEnd
			trig.Reset()
			if rank == 0 {
				lbIters = append(lbIters, i)
				lbCosts = append(lbCosts, cost)
			}
		}

		if rank == 0 {
			finalBounds = bounds
		}
		return nil
	})
	if err != nil {
		return SynthResult{}, err
	}

	res := SynthResult{
		IterTimes:   iterTimes,
		WLI:         wliTrace,
		LBIters:     lbIters,
		LBCosts:     lbCosts,
		FinalBounds: finalBounds,
	}
	for _, c := range clocks {
		if c > res.TotalTime {
			res.TotalTime = c
		}
	}
	res.Usage = make([]float64, cfg.Iterations)
	for i := range res.Usage {
		if iterTimes[i] > 0 {
			res.Usage[i] = stats.Clamp(computeShare[i]/(float64(p)*iterTimes[i]), 0, 1)
		}
	}
	if len(lbCosts) > 0 {
		res.AvgLBCost = stats.Mean(lbCosts)
	}
	res.ComputeTime = make([]float64, p)
	for r, s := range allStats {
		res.ComputeTime[r] = s.ComputeTime
	}
	return res, nil
}

// rebalanceSynth runs one centralized LB step of the synthetic runner:
// every PE sends its per-item weights at iteration i to the main PE, which
// cuts new stripes to the targets (even, or speed-proportional on a
// heterogeneous cluster) over the full weight array and broadcasts
// them; then item state migrates point-to-point along the deterministic
// transfer plan and every PE rebuilds its local structures. The weights are
// globally recomputable (pure function), but the runner still pays the
// communication and compute of the centralized technique — that cost is the
// C the triggers trade off against.
func rebalanceSynth(proc *mpisim.Proc, oldBounds []int, iter int, cfg SynthConfig) []int {
	rank := proc.Rank()

	// Gather [lo, weights...] on the main PE.
	payload := make([]float64, 0, 1+oldBounds[rank+1]-oldBounds[rank])
	payload = append(payload, float64(oldBounds[rank]))
	for j := oldBounds[rank]; j < oldBounds[rank+1]; j++ {
		payload = append(payload, cfg.Weight(j, iter))
	}
	parts := proc.Gather(0, mpisim.PackFloat64s(payload))

	var boundsWire []byte
	if rank == 0 {
		itemW := make([]float64, cfg.Items)
		for _, part := range parts {
			vals := mpisim.UnpackFloat64s(part)
			lo := int(vals[0])
			copy(itemW[lo:lo+len(vals)-1], vals[1:])
		}
		targets := cfg.synthTargets(stats.Sum(itemW))
		newBounds := partition.Stripes(itemW, targets)
		newBounds = partition.EnsureMinCols(newBounds, 1)
		// The centralized partitioning technique runs on the main PE
		// over the gathered item weights.
		proc.Compute(cfg.PartitionFlopPerItem * float64(cfg.Items))
		boundsWire = mpisim.PackInts(newBounds)
	}
	newBounds := mpisim.UnpackInts(proc.Bcast(0, boundsWire))

	// Migration along the shared deterministic plan: sends first (eager,
	// non-blocking), then receives in plan order. The item state is
	// virtual — weights are recomputable — so only the modeled wire size
	// and the pack/unpack compute are charged.
	plan := partition.Transfers(oldBounds, newBounds)
	for _, tr := range plan {
		if tr.From == rank {
			cnt := tr.Hi - tr.Lo
			proc.Compute(0.5 * cfg.MigrateFlopPerItem * float64(cnt))
			proc.SendV(tr.To, tagMigrate, nil, cnt*cfg.ItemBytes)
		}
	}
	for _, tr := range plan {
		if tr.To == rank {
			proc.Recv(tr.From, tagMigrate)
			cnt := tr.Hi - tr.Lo
			proc.Compute(cfg.MigrateFlopPerItem * float64(cnt))
		}
	}
	// Every PE rebuilds its local structures over its (new) range.
	proc.Compute(cfg.RebuildFlopPerItem * float64(newBounds[rank+1]-newBounds[rank]))
	return newBounds
}
