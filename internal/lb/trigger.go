// Package lb is the load-balancing framework of the reproduction: adaptive
// triggers (the degradation-accumulation rule of Zhai et al. [7] used by
// Algorithm 1), LB-cost tracking, and the distributed Runner that executes
// the erosion application over the simulated runtime under either the
// standard LB method or ULBA.
package lb

import (
	"math"

	"ulba/internal/stats"
)

// Trigger decides when to invoke the load balancer. Implementations must be
// deterministic functions of the observed values so that every PE, feeding
// the trigger the same shared iteration times, reaches the same decision —
// LB calls are collective.
type Trigger interface {
	// Observe records the wall time of one iteration.
	Observe(iterTime float64)
	// ShouldFire reports whether the accumulated signal exceeds the
	// threshold (the average LB cost, plus the ULBA overhead estimate
	// when configured).
	ShouldFire(threshold float64) bool
	// Reset clears the state after a LB step.
	Reset()
}

// ImbalanceObserver is implemented by triggers that consume the measured
// weighted load imbalance in addition to iteration wall times. The synthetic
// runner computes WLI = (max-avg)/avg over the per-rank compute seconds
// out-of-band from the pure weight function (every rank can recompute every
// other rank's load at zero simulated cost) and feeds it right after
// Observe, once per iteration.
type ImbalanceObserver interface {
	ObserveImbalance(wli float64)
}

// WLIThreshold fires when the observed weighted load imbalance exceeds a
// fixed tolerance — the GAMER-style policy: redistribute whenever the
// weighted load imbalance (max-avg)/avg of the per-rank loads crosses a
// configured threshold. Unlike the cost-adaptive rules it ignores the
// LB-cost threshold argument entirely: the tolerance already encodes the
// trade-off, as it does in GAMER's LB_EstimateLoadImbalance.
type WLIThreshold struct {
	Threshold float64 // fire when WLI exceeds this; must be positive
	last      float64
}

// Observe ignores iteration wall times; the trigger reacts to WLI only.
func (t *WLIThreshold) Observe(float64) {}

// ObserveImbalance records the iteration's weighted load imbalance.
func (t *WLIThreshold) ObserveImbalance(wli float64) { t.last = wli }

// ShouldFire reports whether the last observed WLI exceeds the tolerance.
// The LB-cost threshold argument is ignored.
func (t *WLIThreshold) ShouldFire(float64) bool { return t.last > t.Threshold }

// Reset clears the observation after a LB step.
func (t *WLIThreshold) Reset() { t.last = 0 }

// Never is the static baseline: no LB during execution.
type Never struct{}

// Observe is a no-op.
func (Never) Observe(float64) {}

// ShouldFire always reports false.
func (Never) ShouldFire(float64) bool { return false }

// Reset is a no-op.
func (Never) Reset() {}

// Periodic fires every K observed iterations, the classic fixed-interval
// policy the paper dismisses ("this method may not adapt to the application
// requirements"); kept as an ablation baseline.
type Periodic struct {
	K     int
	count int
}

// Observe counts an iteration.
func (p *Periodic) Observe(float64) { p.count++ }

// ShouldFire reports whether K iterations have elapsed since the last reset;
// the threshold is ignored.
func (p *Periodic) ShouldFire(float64) bool { return p.K > 0 && p.count >= p.K }

// Reset restarts the interval.
func (p *Periodic) Reset() { p.count = 0 }

// MenonTau implements the trigger of Menon et al. [6], the predecessor the
// paper's related-work section builds on: assume the iteration time grows
// linearly after a LB step (principle of persistence), fit the growth rate
// m^/omega from the observed times, and fire when the projected imbalance
// cost m^*t^2/(2*omega) reaches the LB cost — i.e. at the analytic optimum
// tau = sqrt(2*C*omega/m^). Unlike the Zhai rule it reacts to the fitted
// model rather than the exact accumulated degradation, which is precisely
// the flexibility Zhai et al. added; keeping both makes the improvement
// measurable (see the trigger ablation benchmark).
type MenonTau struct {
	times []float64
}

// NewMenonTau returns a fresh Menon trigger.
func NewMenonTau() *MenonTau {
	return &MenonTau{}
}

// Observe records one iteration time.
func (m *MenonTau) Observe(t float64) {
	m.times = append(m.times, t)
}

// ShouldFire reports whether the iterations elapsed since the last reset
// reached tau = sqrt(2*threshold/slope), where slope is the fitted linear
// growth of the iteration time. With no measurable growth (balanced
// application) it never fires.
func (m *MenonTau) ShouldFire(threshold float64) bool {
	if math.IsNaN(threshold) || math.IsInf(threshold, 0) {
		return false
	}
	if len(m.times) < 3 {
		return false
	}
	slope := stats.SlopeOverIndex(m.times)
	if slope <= 0 {
		return false
	}
	tau := math.Sqrt(2 * threshold / slope)
	return float64(len(m.times)) >= tau
}

// Reset clears the interval after a LB step.
func (m *MenonTau) Reset() {
	m.times = m.times[:0]
}

// FixedSchedule fires at a precomputed, strictly increasing list of absolute
// iterations — the runtime counterpart of a planned schedule.Schedule. An
// entry k makes the balancer run between iterations k-1 and k, matching the
// model convention that a scheduled LB step re-partitions the workload
// before iteration k executes. The threshold is ignored: the plan already
// encodes the cost trade-off.
type FixedSchedule struct {
	Iters []int // strictly increasing absolute iterations
	seen  int   // iterations observed since the start of the run
	next  int   // index of the next pending entry
}

// Observe counts one iteration; the count is never reset because the plan is
// expressed in absolute iterations.
func (f *FixedSchedule) Observe(float64) { f.seen++ }

// ShouldFire reports whether the next planned iteration has been reached.
func (f *FixedSchedule) ShouldFire(float64) bool {
	return f.next < len(f.Iters) && f.seen >= f.Iters[f.next]
}

// Reset advances past every plan entry already covered by the step that just
// ran.
func (f *FixedSchedule) Reset() {
	for f.next < len(f.Iters) && f.Iters[f.next] <= f.seen {
		f.next++
	}
}

// Degradation implements the adaptive rule of Zhai et al. [7] exactly as
// Algorithm 1 uses it: the first iteration after a LB step becomes the
// reference time; every iteration the median of the last three iteration
// times is compared against the reference and the excess accumulates; the
// balancer fires when the accumulated degradation reaches the threshold.
type Degradation struct {
	window  *stats.Window
	ref     float64
	haveRef bool
	acc     float64
}

// NewDegradation returns a fresh degradation trigger.
func NewDegradation() *Degradation {
	return &Degradation{window: stats.NewWindow(3)}
}

// Observe records one iteration time.
func (d *Degradation) Observe(t float64) {
	if !d.haveRef {
		d.ref = t
		d.haveRef = true
	}
	d.window.Push(t)
	d.acc += d.window.Median() - d.ref
}

// Value returns the accumulated degradation in seconds.
func (d *Degradation) Value() float64 { return d.acc }

// ShouldFire reports whether the degradation reached the threshold. A NaN
// or infinite threshold (no LB-cost estimate yet) never fires.
func (d *Degradation) ShouldFire(threshold float64) bool {
	if math.IsNaN(threshold) || math.IsInf(threshold, 0) {
		return false
	}
	return d.acc >= threshold
}

// Reset clears the reference and accumulator (call right after a LB step).
func (d *Degradation) Reset() {
	d.haveRef = false
	d.acc = 0
	d.window.Reset()
}
