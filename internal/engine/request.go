// Request schemas of the HTTP service and their mapping onto the public
// functional-options builders. Requests use snake_case JSON fields; policy
// selection goes through the public spec types (ulba.PlannerSpec,
// ulba.TriggerSpec, ulba.WorkloadSpec), so the service accepts exactly the
// registries the in-process builders do. Responses marshal the library's
// result types as-is — the golden tests pin a served body bit-identical to
// the in-process result.
//
// The field order of every request struct is part of the serving contract:
// the content address hashes the canonical value's JSON, which marshals
// struct fields in declaration order. Reordering a field here would silently
// re-key every cached result.

package engine

import (
	"fmt"

	"ulba"
	"ulba/internal/cli"
)

// SampleSpec asks the server to draw the inputs itself from the pinned
// generators: Table II instances for the model sweep (ulba.SampleInstances),
// the registered-workload scenario mix for the runtime sweep and the
// assessment engine (internal/cli.BuildScenarios). Sampling is
// seed-deterministic, so a sampled request is as cacheable as an explicit
// one.
type SampleSpec struct {
	Seed uint64 `json:"seed"`
	N    int    `json:"n"`
}

func (s *SampleSpec) validate(what string) error {
	if s.N <= 0 {
		return fmt.Errorf("sample.n must be positive, got %d", s.N)
	}
	if s.N > maxBatch {
		return fmt.Errorf("sample.n = %d exceeds the per-request limit of %d %s", s.N, maxBatch, what)
	}
	return nil
}

// maxBatch bounds the instances or scenarios one request may carry, so a
// single call cannot pin the server for minutes or balloon the cache.
const maxBatch = 100000

// ModelSpec is the wire form of ulba.ModelParams (Table I). delta_w may be
// omitted: it is then derived as a*P + m*N, the only value Validate accepts.
type ModelSpec struct {
	P      int     `json:"p"`
	N      int     `json:"n"`
	Gamma  int     `json:"gamma"`
	W0     float64 `json:"w0"`
	DeltaW float64 `json:"delta_w,omitempty"`
	A      float64 `json:"a"`
	M      float64 `json:"m"`
	Alpha  float64 `json:"alpha,omitempty"`
	Omega  float64 `json:"omega"`
	C      float64 `json:"c"`
}

func (m ModelSpec) params() ulba.ModelParams {
	p := ulba.ModelParams{
		P: m.P, N: m.N, Gamma: m.Gamma,
		W0: m.W0, DeltaW: m.DeltaW, A: m.A, M: m.M,
		Alpha: m.Alpha, Omega: m.Omega, C: m.C,
	}
	if p.DeltaW == 0 {
		p.DeltaW = p.A*float64(p.P) + p.M*float64(p.N)
	}
	return p
}

// SweepRequest is the body of POST /v1/sweep: a batch of model instances —
// explicit, sampled, or both concatenated (explicit first) — evaluated by
// the Sweep engine.
type SweepRequest struct {
	Instances []ModelSpec       `json:"instances,omitempty"`
	Sample    *SampleSpec       `json:"sample,omitempty"`
	AlphaGrid int               `json:"alpha_grid,omitempty"`
	Planner   *ulba.PlannerSpec `json:"planner,omitempty"`

	// Workers tunes engine parallelism only; results are worker-count
	// invariant, so the field is excluded from the cache key.
	Workers int  `json:"workers,omitempty"`
	Stream  bool `json:"stream,omitempty"`
}

// build validates the request into a ready engine, the batch size, and a
// deferred instance materializer. Materialization (explicit-spec conversion
// plus server-side sampling) is infallible once validation passed and is
// deferred into the compute path, so a cache hit never pays the O(n)
// generation cost of the batch it did not need.
func (r SweepRequest) build() (sweep *ulba.Sweep, n int, materialize func() []ulba.ModelParams, err error) {
	if len(r.Instances) == 0 && r.Sample == nil {
		return nil, 0, nil, fmt.Errorf("sweep request needs instances, sample, or both")
	}
	if len(r.Instances) > maxBatch {
		return nil, 0, nil, fmt.Errorf("%d instances exceed the per-request limit of %d", len(r.Instances), maxBatch)
	}
	n = len(r.Instances)
	if r.Sample != nil {
		if err := r.Sample.validate("instances"); err != nil {
			return nil, 0, nil, err
		}
		if len(r.Instances)+r.Sample.N > maxBatch {
			return nil, 0, nil, fmt.Errorf("instances + sample.n exceed the per-request limit of %d", maxBatch)
		}
		n += r.Sample.N
	}
	opts := []ulba.Option{ulba.WithWorkers(r.Workers)}
	if r.AlphaGrid != 0 {
		opts = append(opts, ulba.WithAlphaGrid(r.AlphaGrid))
	}
	if r.Planner != nil {
		pl, err := r.Planner.Planner()
		if err != nil {
			return nil, 0, nil, err
		}
		opts = append(opts, ulba.WithPlanner(pl))
	}
	sweep, err = ulba.NewSweep(opts...)
	if err != nil {
		return nil, 0, nil, err
	}
	return sweep, n, func() []ulba.ModelParams {
		params := make([]ulba.ModelParams, 0, n)
		for _, m := range r.Instances {
			params = append(params, m.params())
		}
		if r.Sample != nil {
			params = append(params, ulba.SampleInstances(r.Sample.Seed, r.Sample.N)...)
		}
		return params
	}, nil
}

// canonical strips the fields that cannot change the result (worker count,
// delivery mode), so requests differing only there share one cache entry.
func (r SweepRequest) canonical() SweepRequest {
	r.Workers = 0
	r.Stream = false
	return r
}

// ExperimentRequest is the body of POST /v1/experiment: one erosion
// application run (optionally with its standard-method baseline) under the
// paper's defaults, overridden field by field. Pointer fields distinguish
// "omitted" from an explicit zero.
type ExperimentRequest struct {
	P             int      `json:"p"`
	Method        string   `json:"method,omitempty"` // "standard" (default) or "ulba"
	Alpha         *float64 `json:"alpha,omitempty"`
	AdaptiveAlpha bool     `json:"adaptive_alpha,omitempty"`
	Iterations    int      `json:"iterations,omitempty"`
	Seed          *uint64  `json:"seed,omitempty"`
	ZThreshold    float64  `json:"z_threshold,omitempty"`
	OSNoise       *float64 `json:"os_noise,omitempty"`
	RCB           bool     `json:"rcb,omitempty"`
	OverheadTerm  *bool    `json:"overhead_term,omitempty"`

	Trigger *ulba.TriggerSpec `json:"trigger,omitempty"`
	Planner *ulba.PlannerSpec `json:"planner,omitempty"`
	Model   *ModelSpec        `json:"model,omitempty"`

	Compare bool `json:"compare,omitempty"`
	Workers int  `json:"workers,omitempty"`
}

func (r ExperimentRequest) build() (*ulba.Experiment, error) {
	opts := []ulba.Option{ulba.WithWorkers(r.Workers)}
	switch r.Method {
	case "", "standard":
	case "ulba":
		opts = append(opts, ulba.WithMethod(ulba.ULBA))
	default:
		return nil, fmt.Errorf("unknown method %q (want \"standard\" or \"ulba\")", r.Method)
	}
	if r.Alpha != nil {
		opts = append(opts, ulba.WithAlpha(*r.Alpha))
	}
	if r.AdaptiveAlpha {
		opts = append(opts, ulba.WithAdaptiveAlpha())
	}
	if r.Iterations != 0 {
		opts = append(opts, ulba.WithIterations(r.Iterations))
	}
	if r.Seed != nil {
		opts = append(opts, ulba.WithSeed(*r.Seed))
	}
	if r.ZThreshold != 0 {
		opts = append(opts, ulba.WithZThreshold(r.ZThreshold))
	}
	if r.OSNoise != nil {
		opts = append(opts, ulba.WithOSNoise(*r.OSNoise))
	}
	if r.RCB {
		opts = append(opts, ulba.WithRCB(true))
	}
	if r.OverheadTerm != nil {
		opts = append(opts, ulba.WithOverheadTerm(*r.OverheadTerm))
	}
	opts, err := appendPolicy(opts, r.Trigger, r.Planner, r.Model)
	if err != nil {
		return nil, err
	}
	return ulba.New(r.P, opts...)
}

func (r ExperimentRequest) canonical() ExperimentRequest {
	r.Workers = 0
	return r
}

// appendPolicy maps the when-to-balance part of a request — trigger or
// planner spec plus optional model — onto options, shared by the experiment
// and runtime endpoints. The builders themselves enforce the
// planner/trigger mutual exclusion and the planner-needs-model rule.
func appendPolicy(opts []ulba.Option, ts *ulba.TriggerSpec, ps *ulba.PlannerSpec, ms *ModelSpec) ([]ulba.Option, error) {
	if ts != nil {
		t, err := ts.Trigger()
		if err != nil {
			return nil, err
		}
		opts = append(opts, ulba.WithTrigger(t))
	}
	if ps != nil {
		pl, err := ps.Planner()
		if err != nil {
			return nil, err
		}
		opts = append(opts, ulba.WithPlanner(pl))
	}
	if ms != nil {
		opts = append(opts, ulba.WithModel(ms.params()))
	}
	return opts, nil
}

// RuntimeRequest is the body of POST /v1/runtime (and one element of a
// runtime-sweep batch): one synthetic scenario on the simulated cluster.
type RuntimeRequest struct {
	P          int                `json:"p"`
	Iterations int                `json:"iterations,omitempty"`
	Workload   *ulba.WorkloadSpec `json:"workload,omitempty"`
	Trigger    *ulba.TriggerSpec  `json:"trigger,omitempty"`
	Planner    *ulba.PlannerSpec  `json:"planner,omitempty"`
	Model      *ModelSpec         `json:"model,omitempty"`
	// Speeds makes the simulated cluster heterogeneous: PE r computes at
	// speeds[r] times the reference rate (ulba.WithSpeeds). Length must
	// equal p; omitted means homogeneous.
	Speeds  []float64 `json:"speeds,omitempty"`
	Workers int       `json:"workers,omitempty"`
}

func (r RuntimeRequest) build() (*ulba.RuntimeExperiment, error) {
	opts := []ulba.Option{ulba.WithWorkers(r.Workers)}
	if r.Iterations != 0 {
		opts = append(opts, ulba.WithIterations(r.Iterations))
	}
	if len(r.Speeds) > 0 {
		opts = append(opts, ulba.WithSpeeds(r.Speeds))
	}
	if r.Workload != nil {
		w, err := r.Workload.Workload()
		if err != nil {
			return nil, err
		}
		opts = append(opts, ulba.WithWorkload(w))
	}
	opts, err := appendPolicy(opts, r.Trigger, r.Planner, r.Model)
	if err != nil {
		return nil, err
	}
	return ulba.NewRuntime(r.P, opts...)
}

func (r RuntimeRequest) canonical() RuntimeRequest {
	r.Workers = 0
	return r
}

// RuntimeSweepRequest is the body of POST /v1/runtime-sweep: a batch of
// scenarios — explicit, sampled from the pinned scenario mix, or both
// concatenated (explicit first) — run by the RuntimeSweep engine.
type RuntimeSweepRequest struct {
	Scenarios []RuntimeRequest `json:"scenarios,omitempty"`
	Sample    *SampleSpec      `json:"sample,omitempty"`
	Workers   int              `json:"workers,omitempty"`
	Stream    bool             `json:"stream,omitempty"`
}

// runtimeSweepBatch bounds a runtime-sweep batch: each scenario spawns its
// PE-count goroutines, so the limit is far below the model sweep's.
const runtimeSweepBatch = 4096

// build validates the request into a ready engine, the batch size, and a
// deferred scenario materializer. Explicit scenarios are built eagerly —
// their validation errors must surface as 400s — but server-side sampling
// (cli.BuildScenarios constructs a RuntimeExperiment per scenario) is
// deferred into the compute path, so a cache hit skips it; a sampling
// failure there is a server bug and correctly surfaces as a 500.
func (r RuntimeSweepRequest) build() (sweep *ulba.RuntimeSweep, n int, materialize func() ([]*ulba.RuntimeExperiment, error), err error) {
	if len(r.Scenarios) == 0 && r.Sample == nil {
		return nil, 0, nil, fmt.Errorf("runtime-sweep request needs scenarios, sample, or both")
	}
	if len(r.Scenarios) > runtimeSweepBatch {
		return nil, 0, nil, fmt.Errorf("%d scenarios exceed the per-request limit of %d", len(r.Scenarios), runtimeSweepBatch)
	}
	explicit := make([]*ulba.RuntimeExperiment, 0, len(r.Scenarios))
	for i, sc := range r.Scenarios {
		exp, err := sc.build()
		if err != nil {
			return nil, 0, nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		explicit = append(explicit, exp)
	}
	n = len(explicit)
	if r.Sample != nil {
		if err := r.Sample.validate("scenarios"); err != nil {
			return nil, 0, nil, err
		}
		if len(r.Scenarios)+r.Sample.N > runtimeSweepBatch {
			return nil, 0, nil, fmt.Errorf("scenarios + sample.n exceed the per-request limit of %d", runtimeSweepBatch)
		}
		n += r.Sample.N
	}
	sweep, err = ulba.NewRuntimeSweep(ulba.WithWorkers(r.Workers))
	if err != nil {
		return nil, 0, nil, err
	}
	return sweep, n, func() ([]*ulba.RuntimeExperiment, error) {
		if r.Sample == nil {
			return explicit, nil
		}
		sampled, _, err := cli.BuildScenarios(r.Sample.Seed, r.Sample.N)
		if err != nil {
			return nil, err
		}
		return append(explicit, sampled...), nil
	}, nil
}

func (r RuntimeSweepRequest) canonical() RuntimeSweepRequest {
	scens := make([]RuntimeRequest, len(r.Scenarios))
	for i, sc := range r.Scenarios {
		scens[i] = sc.canonical()
	}
	r.Scenarios = scens
	r.Workers = 0
	r.Stream = false
	return r
}
