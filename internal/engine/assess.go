// The fifth engine: criteria assessment after arXiv:2104.01688, scoring
// registered planner/trigger criteria against the perfect-knowledge bound
// over a shared scenario set. It exists to prove the generic core earns its
// keep — the whole serving surface (sync HTTP, NDJSON streaming, caching,
// async jobs with checkpoint/resume, cluster routing) comes from the
// registration below, with no assessment-specific code in any layer.

package engine

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"ulba"
	"ulba/internal/cli"
)

// AssessRequest is the body of POST /v1/assess: a panel of criteria scored
// over a scenario set — explicit, sampled from the pinned scenario mix, or
// both concatenated (explicit first). Empty criteria select
// ulba.DefaultCriteria (every registered trigger at its defaults).
type AssessRequest struct {
	Criteria  []ulba.Criterion     `json:"criteria,omitempty"`
	Scenarios []AssessScenarioSpec `json:"scenarios,omitempty"`
	Sample    *SampleSpec          `json:"sample,omitempty"`
	Workers   int                  `json:"workers,omitempty"`
	Stream    bool                 `json:"stream,omitempty"`
}

// AssessScenarioSpec is the wire form of ulba.AssessmentScenario, with the
// model in its ModelSpec wire shape.
type AssessScenarioSpec struct {
	P          int                `json:"p"`
	Iterations int                `json:"iterations,omitempty"`
	Workload   *ulba.WorkloadSpec `json:"workload,omitempty"`
	Model      *ModelSpec         `json:"model,omitempty"`
	Speeds     []float64          `json:"speeds,omitempty"`
}

func (s AssessScenarioSpec) scenario() ulba.AssessmentScenario {
	out := ulba.AssessmentScenario{
		P: s.P, Iterations: s.Iterations,
		Workload: s.Workload, Speeds: s.Speeds,
	}
	if s.Model != nil {
		mp := s.Model.params()
		out.Model = &mp
	}
	return out
}

// AssessResponse is the body of a non-streamed POST /v1/assess: the
// per-criterion ranking plus the cell-ordered runtime results (cell index =
// criterion x scenario count + scenario).
type AssessResponse struct {
	Summary ulba.AssessmentSummary `json:"summary"`
	Results []ulba.RuntimeResult   `json:"results"`
}

// AssessStreamTail terminates a streamed /v1/assess.
type AssessStreamTail struct {
	Summary *ulba.AssessmentSummary `json:"summary,omitempty"`
	Error   string                  `json:"error,omitempty"`
}

// build validates the request into its criteria panel, the cell count, and
// a deferred assessment constructor. Criteria and explicit scenarios are
// validated eagerly — their errors must surface as 400s — while server-side
// scenario sampling is deferred into the compute path like the
// runtime-sweep's; the constructor memoizes, so Run/Prepare/Body of one
// decoded request build the cell grid once.
func (r AssessRequest) build() (criteria []ulba.Criterion, n int, assessment func() (*ulba.Assessment, error), err error) {
	criteria = r.Criteria
	if len(criteria) == 0 {
		criteria = ulba.DefaultCriteria()
	}
	for i, c := range criteria {
		if (c.Trigger == nil) == (c.Planner == nil) {
			return nil, 0, nil, fmt.Errorf("assessment criterion %d needs exactly one of trigger or planner", i)
		}
		if c.Trigger != nil {
			if _, err := c.Trigger.Trigger(); err != nil {
				return nil, 0, nil, fmt.Errorf("assessment criterion %d: %w", i, err)
			}
		}
		if c.Planner != nil {
			if _, err := c.Planner.Planner(); err != nil {
				return nil, 0, nil, fmt.Errorf("assessment criterion %d: %w", i, err)
			}
		}
	}
	if len(r.Scenarios) == 0 && r.Sample == nil {
		return nil, 0, nil, fmt.Errorf("assess request needs scenarios, sample, or both")
	}
	cols := len(r.Scenarios)
	if r.Sample != nil {
		if err := r.Sample.validate("scenarios"); err != nil {
			return nil, 0, nil, err
		}
		cols += r.Sample.N
	}
	n = len(criteria) * cols
	if n > runtimeSweepBatch {
		return nil, 0, nil, fmt.Errorf("%d assessment cells (criteria x scenarios) exceed the per-request limit of %d", n, runtimeSweepBatch)
	}
	explicit := make([]ulba.AssessmentScenario, len(r.Scenarios))
	for i, s := range r.Scenarios {
		explicit[i] = s.scenario()
	}
	crits, workers, sample := criteria, r.Workers, r.Sample
	build := func() (*ulba.Assessment, error) {
		scens := explicit
		if sample != nil {
			scens = append(append([]ulba.AssessmentScenario(nil), explicit...),
				cli.BuildAssessmentScenarios(sample.Seed, sample.N)...)
		}
		return ulba.NewAssessment(crits, scens, ulba.WithWorkers(workers))
	}
	if sample == nil {
		// No sampling to defer: build now, so every invalid explicit
		// scenario or criterion x scenario pairing (e.g. a planner criterion
		// over an unmodeled workload) is a 400 at intake.
		a, err := build()
		if err != nil {
			return nil, 0, nil, err
		}
		return criteria, n, func() (*ulba.Assessment, error) { return a, nil }, nil
	} else if len(explicit) > 0 {
		// Probe the explicit columns alone for the same eager validation;
		// the probe grid is rebuilt with the sampled columns at compute
		// time.
		if _, err := ulba.NewAssessment(crits, explicit, ulba.WithWorkers(workers)); err != nil {
			return nil, 0, nil, err
		}
	}
	var once sync.Once
	var a *ulba.Assessment
	var aerr error
	return criteria, n, func() (*ulba.Assessment, error) {
		once.Do(func() { a, aerr = build() })
		return a, aerr
	}, nil
}

func (r AssessRequest) canonical() AssessRequest {
	r.Workers = 0
	r.Stream = false
	return r
}

// assessReq is a decoded POST /v1/assess request: the wire form, the cell
// count, and the memoized assessment constructor.
type assessReq struct {
	wire       AssessRequest
	n          int
	assessment func() (*ulba.Assessment, error)
}

type assessEngine struct{}

func (assessEngine) Meta() Meta {
	return Meta{Type: "assess", Endpoint: "/v1/assess"}
}

func (assessEngine) Decode(raw []byte) (assessReq, error) {
	var wire AssessRequest
	if err := DecodeStrict(bytes.NewReader(raw), &wire); err != nil {
		return assessReq{}, err
	}
	_, n, assessment, err := wire.build()
	if err != nil {
		return assessReq{}, err
	}
	return assessReq{wire: wire, n: n, assessment: assessment}, nil
}

func (assessEngine) Canonical(r assessReq) any { return r.wire.canonical() }

func (assessEngine) Units(r assessReq) int { return r.n }

func (assessEngine) Run(ctx context.Context, r assessReq) (AssessResponse, error) {
	a, err := r.assessment()
	if err != nil {
		return AssessResponse{}, err
	}
	summary, results, err := a.Run(ctx)
	if err != nil {
		return AssessResponse{}, err
	}
	return AssessResponse{Summary: summary, Results: results}, nil
}

func (assessEngine) Streaming(r assessReq) bool { return r.wire.Stream }

func (assessEngine) Prepare(r assessReq) (func(ctx context.Context, missing []int) <-chan UnitResult[ulba.RuntimeResult], error) {
	a, err := r.assessment()
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context, missing []int) <-chan UnitResult[ulba.RuntimeResult] {
		return mapStream(ctx, a.StreamCells(ctx, missing), func(res ulba.RuntimeSweepResult) UnitResult[ulba.RuntimeResult] {
			return UnitResult[ulba.RuntimeResult]{Index: res.Index, Unit: res.Result, Err: res.Err}
		})
	}, nil
}

// Line and DecodeLine reuse the runtime stream-line shape: an assessment
// unit is one per-scenario runtime result, exactly like a runtime-sweep's.
func (assessEngine) Line(index int, unit *ulba.RuntimeResult, errMsg string) any {
	return RuntimeStreamLine{Index: index, Result: unit, Error: errMsg}
}

func (assessEngine) DecodeLine(raw []byte) (int, ulba.RuntimeResult, bool) {
	return runtimeSweepEngine{}.DecodeLine(raw)
}

func (assessEngine) Body(r assessReq, units []ulba.RuntimeResult) (AssessResponse, error) {
	a, err := r.assessment()
	if err != nil {
		return AssessResponse{}, err
	}
	return AssessResponse{Summary: a.Summarize(units), Results: units}, nil
}

func (assessEngine) Tail(r assessReq, units []ulba.RuntimeResult) any {
	a, err := r.assessment()
	if err != nil {
		return AssessStreamTail{Error: err.Error()}
	}
	sum := a.Summarize(units)
	return AssessStreamTail{Summary: &sum}
}
