package engine

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestRegistryOrder pins the registry's shape: the five engines in serving
// order, each resolvable by type, with distinct endpoints.
func TestRegistryOrder(t *testing.T) {
	want := []string{"experiment", "sweep", "runtime", "runtime-sweep", "assess"}
	got := TypeNames()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("TypeNames() = %v, want %v", got, want)
	}
	endpoints := map[string]bool{}
	for _, d := range Engines() {
		if byType, ok := ByType(d.Type); !ok || byType != d {
			t.Errorf("ByType(%q) does not resolve to the listed descriptor", d.Type)
		}
		if endpoints[d.Endpoint] {
			t.Errorf("endpoint %q registered twice", d.Endpoint)
		}
		endpoints[d.Endpoint] = true
	}
	if _, ok := ByType("no-such-engine"); ok {
		t.Error(`ByType("no-such-engine") resolved`)
	}
}

// TestTypeList pins the human-readable type enumeration used in the
// unknown-job-type error.
func TestTypeList(t *testing.T) {
	list := TypeList()
	if !strings.HasPrefix(list, `"experiment", `) || !strings.Contains(list, `or "assess"`) {
		t.Fatalf("TypeList() = %s", list)
	}
}

// TestDecodeStrict pins the strict-decoder 400 surface: unknown fields and
// trailing data are rejected with messages naming the problem.
func TestDecodeStrict(t *testing.T) {
	var v struct {
		A int `json:"a"`
	}
	if err := DecodeStrict(strings.NewReader(`{"a":1}`), &v); err != nil || v.A != 1 {
		t.Fatalf("valid body: %v", err)
	}
	if err := DecodeStrict(strings.NewReader(`{"b":1}`), &v); err == nil || !strings.Contains(err.Error(), "invalid request body") {
		t.Fatalf("unknown field: %v", err)
	}
	if err := DecodeStrict(strings.NewReader(`{"a":1} {"a":2}`), &v); err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("trailing data: %v", err)
	}
}

// TestKeyDeterminism pins the content address: stable across calls,
// sensitive to both the endpoint and the canonical value.
func TestKeyDeterminism(t *testing.T) {
	k1, err := Key("/v1/x", map[string]int{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key("/v1/x", map[string]int{"a": 1})
	if k1 != k2 {
		t.Fatalf("key not stable: %s != %s", k1, k2)
	}
	if k3, _ := Key("/v1/y", map[string]int{"a": 1}); k3 == k1 {
		t.Fatal("key ignores the endpoint")
	}
	if k4, _ := Key("/v1/x", map[string]int{"a": 2}); k4 == k1 {
		t.Fatal("key ignores the canonical value")
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not a SHA-256 hex digest", k1)
	}
}

// decodeBatch decodes a batch engine request and returns its instance and
// a fresh batch.
func decodeBatch(t *testing.T, typ, raw string) (*Instance, *Batch) {
	t.Helper()
	d, ok := ByType(typ)
	if !ok {
		t.Fatalf("engine %q not registered", typ)
	}
	inst, err := d.Decode([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	b := inst.NewBatch()
	if b == nil {
		t.Fatalf("engine %q has no batch surface", typ)
	}
	return inst, b
}

// TestBatchLifecycle drives the erased batch machinery end to end on the
// sweep engine: open a partial index set, restore the produced lines into a
// second batch, complete it, and check the assembled body equals the unary
// Run result byte for byte.
func TestBatchLifecycle(t *testing.T) {
	const raw = `{"sample":{"seed":11,"n":6},"alpha_grid":7}`
	inst, b := decodeBatch(t, "sweep", raw)
	if err := b.Prepare(); err != nil {
		t.Fatal(err)
	}
	if b.N != 6 || inst.Units() != 6 {
		t.Fatalf("batch size = %d, units = %d, want 6", b.N, inst.Units())
	}

	// First pass: compute indices {1, 3, 5} and render their lines.
	ctx := context.Background()
	var lines [][]byte
	for u := range b.Open(ctx, []int{1, 3, 5}) {
		if u.Err != nil {
			t.Fatalf("unit %d: %v", u.Index, u.Err)
		}
		buf, err := json.Marshal(b.Line(u.Index))
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, buf)
	}
	if len(lines) != 3 {
		t.Fatalf("delivered %d units, want 3", len(lines))
	}

	// Second pass: a fresh batch restores those lines (garbage and
	// out-of-range lines are refused), computes the rest, and its body
	// equals the unary result.
	inst2, b2 := decodeBatch(t, "sweep", raw)
	if err := b2.Prepare(); err != nil {
		t.Fatal(err)
	}
	for _, line := range lines {
		idx, ok := b2.Restore(line)
		if !ok {
			t.Fatalf("line %s did not restore", line)
		}
		if idx != 1 && idx != 3 && idx != 5 {
			t.Fatalf("restored index %d, want one of 1/3/5", idx)
		}
	}
	if _, ok := b2.Restore([]byte(`not json`)); ok {
		t.Fatal("garbage line restored")
	}
	if idx, ok := b2.Restore([]byte(`{"index":99,"comparison":{}}`)); ok {
		t.Fatalf("out-of-range index %d restored", idx)
	}
	for u := range b2.Open(ctx, []int{0, 2, 4}) {
		if u.Err != nil {
			t.Fatalf("unit %d: %v", u.Index, u.Err)
		}
	}
	body, err := b2.Body()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	unary, err := inst2.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(unary)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("restored+completed body differs from unary Run:\n%s\n%s", got, want)
	}
	if tail, err := json.Marshal(b2.Tail()); err != nil || !strings.Contains(string(tail), "summary") {
		t.Fatalf("tail = %s (%v)", tail, err)
	}
	_ = inst
}

// TestBatchErrorLine pins the per-unit error line shape shared by the
// streaming and job surfaces.
func TestBatchErrorLine(t *testing.T) {
	_, b := decodeBatch(t, "sweep", `{"sample":{"seed":1,"n":2}}`)
	if err := b.Prepare(); err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(b.ErrorLine(1, "boom"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Index int    `json:"index"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(buf, &m); err != nil || m.Index != 1 || m.Error != "boom" {
		t.Fatalf("error line = %s", buf)
	}
}

// TestBatchCancellation pins that a cancelled context closes the unit
// channel without requiring the consumer to drain every unit.
func TestBatchCancellation(t *testing.T) {
	_, b := decodeBatch(t, "runtime-sweep", `{"sample":{"seed":2,"n":8}}`)
	if err := b.Prepare(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := b.Open(ctx, []int{0, 1, 2, 3, 4, 5, 6, 7})
	<-ch // first unit delivered
	cancel()
	for range ch { // the relay must close the channel promptly
	}
}

// TestUnaryInstance pins the unary side of the erasure: no batch surface,
// no streaming, and Run produces the response directly.
func TestUnaryInstance(t *testing.T) {
	d, _ := ByType("runtime")
	inst, err := d.Decode([]byte(`{"p":4,"iterations":20,"workload":{"name":"linear","seed":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if inst.NewBatch() != nil {
		t.Fatal("unary engine produced a batch")
	}
	if inst.Stream() {
		t.Fatal("unary engine claims streaming")
	}
	if inst.Units() != 1 {
		t.Fatalf("units = %d, want 1", inst.Units())
	}
	resp, err := inst.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(RuntimeResponse); !ok {
		t.Fatalf("Run returned %T, want RuntimeResponse", resp)
	}
}

// TestAssessEngineGrid pins the fifth engine's cell grid: criteria-major
// ordering over the scenario columns, with the memoized build shared
// between Run and the batch surface.
func TestAssessEngineGrid(t *testing.T) {
	const raw = `{"criteria":[{"trigger":{"name":"degradation"}},{"trigger":{"name":"never"}}],"scenarios":[{"p":4,"iterations":20,"workload":{"name":"linear","seed":1}},{"p":4,"iterations":20,"workload":{"name":"bursty","seed":2}}]}`
	d, _ := ByType("assess")
	inst, err := d.Decode([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Units() != 4 {
		t.Fatalf("units = %d, want 2 criteria x 2 scenarios = 4", inst.Units())
	}
	resp, err := inst.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ar, ok := resp.(AssessResponse)
	if !ok {
		t.Fatalf("Run returned %T", resp)
	}
	if len(ar.Results) != 4 || len(ar.Summary.Criteria) != 2 || ar.Summary.Scenarios != 2 {
		t.Fatalf("summary = %+v over %d results", ar.Summary, len(ar.Results))
	}
	// The never trigger does no balancing; the reactive criterion must
	// rank at least as high, so it is the grid's best.
	if ar.Summary.Best != "degradation" {
		t.Fatalf("best = %q, want degradation over never", ar.Summary.Best)
	}
	for _, c := range ar.Summary.Criteria {
		if c.Regret < 0 {
			t.Fatalf("criterion %q has negative regret %f", c.Name, c.Regret)
		}
	}
}

// TestAssessValidation pins the assess 400 surface.
func TestAssessValidation(t *testing.T) {
	d, _ := ByType("assess")
	cases := []struct {
		name, raw, want string
	}{
		{"no scenarios", `{"criteria":[{"trigger":{"name":"menon"}}]}`, "needs scenarios, sample, or both"},
		{"both policies", `{"criteria":[{"trigger":{"name":"menon"},"planner":{"name":"greedy"}}],"sample":{"seed":1,"n":1}}`, "exactly one of trigger or planner"},
		{"neither policy", `{"criteria":[{"name":"x"}],"sample":{"seed":1,"n":1}}`, "exactly one of trigger or planner"},
		{"unknown trigger", `{"criteria":[{"trigger":{"name":"nope"}}],"sample":{"seed":1,"n":1}}`, "criterion 0"},
		{"bad sample", `{"sample":{"seed":1,"n":0}}`, "must be positive"},
		{"cell limit", `{"sample":{"seed":1,"n":99999}}`, "exceed the per-request limit"},
		{"bad explicit scenario", `{"criteria":[{"trigger":{"name":"menon"}}],"scenarios":[{"p":0}]}`, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := d.Decode([]byte(c.raw))
			if err == nil {
				t.Fatalf("decode accepted %s", c.raw)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
