// The four original engines of the service — experiment, sweep, runtime,
// runtime-sweep — implemented against the generic contract. Each binds its
// wire request type to the matching public builder of package ulba; the
// response and stream-line types here marshal exactly the bytes the
// pre-refactor handlers served (the golden refactor-pin test holds them to
// it).

package engine

import (
	"bytes"
	"context"
	"encoding/json"

	"ulba"
)

// init registers every engine in serving order: the registration sequence
// is the route-mount order, the job-type vocabulary order, and the
// registries listing order, so it lives in one place.
func init() {
	Register(experimentEngine{})
	RegisterBatch(sweepEngine{})
	Register(runtimeEngine{})
	RegisterBatch(runtimeSweepEngine{})
	RegisterBatch(assessEngine{})
}

// ExperimentResponse is the body of POST /v1/experiment. Result (and
// Baseline, with compare) marshal ulba.RunResult as-is; Gain and
// CallsAvoided are the MethodComparison derivations, and
// PredictedTotalTime carries Experiment.PlannedTotalTime for planner-driven
// runs.
type ExperimentResponse struct {
	Result             ulba.RunResult  `json:"result"`
	Baseline           *ulba.RunResult `json:"baseline,omitempty"`
	Gain               *float64        `json:"gain,omitempty"`
	CallsAvoided       *float64        `json:"calls_avoided,omitempty"`
	PredictedTotalTime *float64        `json:"predicted_total_time,omitempty"`
}

// SweepResponse is the body of a non-streamed POST /v1/sweep: exactly
// Sweep.Run's summary and input-ordered comparisons, marshaled as-is.
type SweepResponse struct {
	Summary     ulba.SweepSummary `json:"summary"`
	Comparisons []ulba.Comparison `json:"comparisons"`
}

// RuntimeResponse is the body of POST /v1/runtime: RuntimeResult marshaled
// as-is plus its two derived figures of merit.
type RuntimeResponse struct {
	Result     ulba.RuntimeResult `json:"result"`
	Gain       float64            `json:"gain"`
	Efficiency float64            `json:"efficiency"`
}

// RuntimeSweepResponse is the body of a non-streamed POST /v1/runtime-sweep:
// exactly RuntimeSweep.Run's summary and input-ordered results.
type RuntimeSweepResponse struct {
	Summary ulba.RuntimeSweepSummary `json:"summary"`
	Results []ulba.RuntimeResult     `json:"results"`
}

// SweepStreamLine is one per-instance line of a streamed /v1/sweep and the
// checkpoint-line format of sweep jobs.
type SweepStreamLine struct {
	Index      int              `json:"index"`
	Comparison *ulba.Comparison `json:"comparison,omitempty"`
	Error      string           `json:"error,omitempty"`
}

// SweepStreamTail terminates a streamed /v1/sweep.
type SweepStreamTail struct {
	Summary *ulba.SweepSummary `json:"summary,omitempty"`
	Error   string             `json:"error,omitempty"`
}

// RuntimeStreamLine is one per-scenario line of a streamed /v1/runtime-sweep
// (and of /v1/assess, whose units are the same per-scenario runtime results)
// and the checkpoint-line format of both engines' jobs.
type RuntimeStreamLine struct {
	Index  int                 `json:"index"`
	Result *ulba.RuntimeResult `json:"result,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// RuntimeStreamTail terminates a streamed /v1/runtime-sweep.
type RuntimeStreamTail struct {
	Summary *ulba.RuntimeSweepSummary `json:"summary,omitempty"`
	Error   string                    `json:"error,omitempty"`
}

// --- experiment ---

// experimentReq is a decoded POST /v1/experiment request: the wire form
// (for the canonical value) plus its ready-to-run builder product.
type experimentReq struct {
	wire ExperimentRequest
	exp  *ulba.Experiment
}

type experimentEngine struct{}

func (experimentEngine) Meta() Meta {
	return Meta{Type: "experiment", Endpoint: "/v1/experiment"}
}

func (experimentEngine) Decode(raw []byte) (experimentReq, error) {
	var wire ExperimentRequest
	if err := DecodeStrict(bytes.NewReader(raw), &wire); err != nil {
		return experimentReq{}, err
	}
	exp, err := wire.build()
	if err != nil {
		return experimentReq{}, err
	}
	return experimentReq{wire: wire, exp: exp}, nil
}

func (experimentEngine) Canonical(r experimentReq) any { return r.wire.canonical() }

func (experimentEngine) Units(experimentReq) int { return 1 }

func (experimentEngine) Run(ctx context.Context, r experimentReq) (ExperimentResponse, error) {
	var resp ExperimentResponse
	if r.wire.Compare {
		cmp, err := r.exp.Compare(ctx)
		if err != nil {
			return ExperimentResponse{}, err
		}
		gain, avoided := cmp.Gain(), cmp.CallsAvoided()
		resp.Result = cmp.Result
		resp.Baseline = &cmp.Baseline
		resp.Gain, resp.CallsAvoided = &gain, &avoided
	} else {
		res, err := r.exp.Run(ctx)
		if err != nil {
			return ExperimentResponse{}, err
		}
		resp.Result = res
	}
	if t, ok := r.exp.PlannedTotalTime(); ok {
		resp.PredictedTotalTime = &t
	}
	return resp, nil
}

// --- runtime ---

// runtimeReq is a decoded POST /v1/runtime request.
type runtimeReq struct {
	wire RuntimeRequest
	exp  *ulba.RuntimeExperiment
}

type runtimeEngine struct{}

func (runtimeEngine) Meta() Meta {
	return Meta{Type: "runtime", Endpoint: "/v1/runtime"}
}

func (runtimeEngine) Decode(raw []byte) (runtimeReq, error) {
	var wire RuntimeRequest
	if err := DecodeStrict(bytes.NewReader(raw), &wire); err != nil {
		return runtimeReq{}, err
	}
	exp, err := wire.build()
	if err != nil {
		return runtimeReq{}, err
	}
	return runtimeReq{wire: wire, exp: exp}, nil
}

func (runtimeEngine) Canonical(r runtimeReq) any { return r.wire.canonical() }

func (runtimeEngine) Units(runtimeReq) int { return 1 }

func (runtimeEngine) Run(ctx context.Context, r runtimeReq) (RuntimeResponse, error) {
	res, err := r.exp.Run(ctx)
	if err != nil {
		return RuntimeResponse{}, err
	}
	return RuntimeResponse{Result: res, Gain: res.Gain(), Efficiency: res.Efficiency()}, nil
}

// --- sweep ---

// sweepReq is a decoded POST /v1/sweep request: the wire form, the ready
// engine, the batch size, and the deferred instance materializer.
type sweepReq struct {
	wire        SweepRequest
	sweep       *ulba.Sweep
	n           int
	materialize func() []ulba.ModelParams
}

type sweepEngine struct{}

func (sweepEngine) Meta() Meta {
	return Meta{Type: "sweep", Endpoint: "/v1/sweep"}
}

func (sweepEngine) Decode(raw []byte) (sweepReq, error) {
	var wire SweepRequest
	if err := DecodeStrict(bytes.NewReader(raw), &wire); err != nil {
		return sweepReq{}, err
	}
	sweep, n, materialize, err := wire.build()
	if err != nil {
		return sweepReq{}, err
	}
	return sweepReq{wire: wire, sweep: sweep, n: n, materialize: materialize}, nil
}

func (sweepEngine) Canonical(r sweepReq) any { return r.wire.canonical() }

func (sweepEngine) Units(r sweepReq) int { return r.n }

// Run is the unary leg: Sweep.Run aggregates internally under the
// guaranteed lowest-index error contract.
func (sweepEngine) Run(ctx context.Context, r sweepReq) (SweepResponse, error) {
	summary, comps, err := r.sweep.Run(ctx, r.materialize())
	if err != nil {
		return SweepResponse{}, err
	}
	return SweepResponse{Summary: summary, Comparisons: comps}, nil
}

func (sweepEngine) Streaming(r sweepReq) bool { return r.wire.Stream }

func (sweepEngine) Prepare(r sweepReq) (func(ctx context.Context, missing []int) <-chan UnitResult[ulba.Comparison], error) {
	params := r.materialize()
	return func(ctx context.Context, missing []int) <-chan UnitResult[ulba.Comparison] {
		sub := make([]ulba.ModelParams, len(missing))
		for i, idx := range missing {
			sub[i] = params[idx]
		}
		return mapStream(ctx, r.sweep.Stream(ctx, sub), func(res ulba.SweepResult) UnitResult[ulba.Comparison] {
			return UnitResult[ulba.Comparison]{Index: res.Index, Unit: res.Comparison, Err: res.Err}
		})
	}, nil
}

func (sweepEngine) Line(index int, unit *ulba.Comparison, errMsg string) any {
	return SweepStreamLine{Index: index, Comparison: unit, Error: errMsg}
}

func (sweepEngine) DecodeLine(raw []byte) (int, ulba.Comparison, bool) {
	var line SweepStreamLine
	if json.Unmarshal(raw, &line) != nil || line.Comparison == nil {
		return 0, ulba.Comparison{}, false
	}
	return line.Index, *line.Comparison, true
}

func (sweepEngine) Body(_ sweepReq, units []ulba.Comparison) (SweepResponse, error) {
	return SweepResponse{Summary: ulba.SummarizeSweep(units), Comparisons: units}, nil
}

func (sweepEngine) Tail(_ sweepReq, units []ulba.Comparison) any {
	sum := ulba.SummarizeSweep(units)
	return SweepStreamTail{Summary: &sum}
}

// --- runtime-sweep ---

// runtimeSweepReq is a decoded POST /v1/runtime-sweep request.
type runtimeSweepReq struct {
	wire        RuntimeSweepRequest
	sweep       *ulba.RuntimeSweep
	n           int
	materialize func() ([]*ulba.RuntimeExperiment, error)
}

type runtimeSweepEngine struct{}

func (runtimeSweepEngine) Meta() Meta {
	return Meta{Type: "runtime-sweep", Endpoint: "/v1/runtime-sweep"}
}

func (runtimeSweepEngine) Decode(raw []byte) (runtimeSweepReq, error) {
	var wire RuntimeSweepRequest
	if err := DecodeStrict(bytes.NewReader(raw), &wire); err != nil {
		return runtimeSweepReq{}, err
	}
	sweep, n, materialize, err := wire.build()
	if err != nil {
		return runtimeSweepReq{}, err
	}
	return runtimeSweepReq{wire: wire, sweep: sweep, n: n, materialize: materialize}, nil
}

func (runtimeSweepEngine) Canonical(r runtimeSweepReq) any { return r.wire.canonical() }

func (runtimeSweepEngine) Units(r runtimeSweepReq) int { return r.n }

func (runtimeSweepEngine) Run(ctx context.Context, r runtimeSweepReq) (RuntimeSweepResponse, error) {
	exps, err := r.materialize()
	if err != nil {
		return RuntimeSweepResponse{}, err
	}
	summary, results, err := r.sweep.Run(ctx, exps)
	if err != nil {
		return RuntimeSweepResponse{}, err
	}
	return RuntimeSweepResponse{Summary: summary, Results: results}, nil
}

func (runtimeSweepEngine) Streaming(r runtimeSweepReq) bool { return r.wire.Stream }

func (runtimeSweepEngine) Prepare(r runtimeSweepReq) (func(ctx context.Context, missing []int) <-chan UnitResult[ulba.RuntimeResult], error) {
	exps, err := r.materialize()
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context, missing []int) <-chan UnitResult[ulba.RuntimeResult] {
		sub := make([]*ulba.RuntimeExperiment, len(missing))
		for i, idx := range missing {
			sub[i] = exps[idx]
		}
		return mapStream(ctx, r.sweep.Stream(ctx, sub), func(res ulba.RuntimeSweepResult) UnitResult[ulba.RuntimeResult] {
			return UnitResult[ulba.RuntimeResult]{Index: res.Index, Unit: res.Result, Err: res.Err}
		})
	}, nil
}

func (runtimeSweepEngine) Line(index int, unit *ulba.RuntimeResult, errMsg string) any {
	return RuntimeStreamLine{Index: index, Result: unit, Error: errMsg}
}

func (runtimeSweepEngine) DecodeLine(raw []byte) (int, ulba.RuntimeResult, bool) {
	var line RuntimeStreamLine
	if json.Unmarshal(raw, &line) != nil || line.Result == nil {
		return 0, ulba.RuntimeResult{}, false
	}
	return line.Index, *line.Result, true
}

func (runtimeSweepEngine) Body(_ runtimeSweepReq, units []ulba.RuntimeResult) (RuntimeSweepResponse, error) {
	return RuntimeSweepResponse{Summary: ulba.SummarizeRuntimeSweep(units), Results: units}, nil
}

func (runtimeSweepEngine) Tail(_ runtimeSweepReq, units []ulba.RuntimeResult) any {
	sum := ulba.SummarizeRuntimeSweep(units)
	return RuntimeStreamTail{Summary: &sum}
}
