// Package engine is the generic engine core: one contract —
// validate/run/summarize/stream/cache-key/checkpoint-resume — that every
// compute engine of the service implements exactly once, and a registry the
// serving layers (sync HTTP handlers, NDJSON streaming, async jobs with
// checkpointed resume, cluster forward/replicate/steal routing) program
// against. Adding an engine means implementing Engine (or BatchEngine) for
// a new request type and registering it; the HTTP surface, caching,
// persistence, and cluster placement follow without engine-specific code.
//
// The typed contract is erased at registration into Descriptor/Instance/
// Batch, the closure-shaped view the server consumes: a registry of
// heterogeneous engines cannot share one type parameter, and the serving
// code never needs the concrete types — only the engines do.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Meta names an engine: the job-submission type clients write in
// POST /v1/jobs bodies and the synchronous route the engine serves.
type Meta struct {
	Type     string // e.g. "sweep"
	Endpoint string // e.g. "/v1/sweep"
}

// Engine is the generic contract every engine implements once. Req is the
// decoded, validated request — typically the wire struct bound to its ready
// engine values — and Result is the response value whose JSON marshal (plus
// a trailing newline) is the served body. Run must be a pure function of
// the canonicalized request: the determinism contract is what lets one
// content address stand for the result across caches, stores, replicas, and
// restarts.
type Engine[Req, Result any] interface {
	Meta() Meta
	// Decode strictly parses and validates raw into a ready request.
	// Errors surface as 400s on every intake surface (sync endpoint, job
	// submission, stolen job), never inside a running job.
	Decode(raw []byte) (Req, error)
	// Canonical returns the request stripped of its result-neutral fields
	// (worker count, delivery mode). The content address is the SHA-256 of
	// Endpoint + "\n" + the canonical value's deterministic JSON.
	Canonical(req Req) any
	// Units is the progress denominator: the batch size, or 1 for unary
	// engines.
	Units(req Req) int
	// Run computes the full response value — the unary leg.
	Run(ctx context.Context, req Req) (Result, error)
}

// UnitResult is one completed unit delivered by a batch engine's opener.
// Index is the unit's position in the missing slice the opener was given
// (the subset being computed), not the global batch index.
type UnitResult[U any] struct {
	Index int
	Unit  U
	Err   error
}

// BatchEngine extends Engine for batch-shaped engines: per-unit streaming
// (the NDJSON surface) and per-unit checkpointing (the resume surface). The
// stream line and the checkpoint line are the same rendering, so one format
// serves live progress, durable partial state, and the resume replay.
type BatchEngine[Req, U, Result any] interface {
	Engine[Req, Result]
	// Streaming reports whether the request asked for NDJSON delivery.
	Streaming(req Req) bool
	// Prepare materializes the batch inputs — the possibly expensive,
	// possibly fallible step deferred out of Decode so cache hits never pay
	// it — and returns the opener: open(ctx, missing) computes exactly the
	// units whose global indices are listed, delivering completion-ordered
	// results whose Index is the position in missing.
	Prepare(req Req) (func(ctx context.Context, missing []int) <-chan UnitResult[U], error)
	// Line renders the NDJSON/checkpoint line for one unit: value form
	// when unit is non-nil, {"index", "error"} form when errMsg is set.
	Line(index int, unit *U, errMsg string) any
	// DecodeLine parses a checkpoint line back into its global index and
	// unit, reporting ok=false for lines that are not complete units.
	DecodeLine(raw []byte) (int, U, bool)
	// Body aggregates the input-ordered units into the unary response —
	// bit-identical to Run's for the same request.
	Body(req Req, units []U) (Result, error)
	// Tail renders the success-terminal summary line of a stream.
	Tail(req Req, units []U) any
}

// Descriptor is one registered engine with its types erased: what the
// registry lists and the serving layers route by.
type Descriptor struct {
	Type     string
	Endpoint string
	decode   func(raw []byte) (*Instance, error)
}

// Decode strictly parses and validates a raw request body into an Instance.
func (d *Descriptor) Decode(raw []byte) (*Instance, error) { return d.decode(raw) }

// Instance is one decoded, validated request bound to its engine: the
// type-erased view the HTTP handlers, job runners, and cluster hooks
// consume.
type Instance struct {
	desc   *Descriptor
	canon  any
	stream bool
	units  int
	run    func(ctx context.Context) (any, error)
	batch  func() *Batch
}

// Type is the engine's job-submission type.
func (in *Instance) Type() string { return in.desc.Type }

// Endpoint is the engine's synchronous route.
func (in *Instance) Endpoint() string { return in.desc.Endpoint }

// Canonical returns the canonicalized request value the content address is
// derived from.
func (in *Instance) Canonical() any { return in.canon }

// Key is the request's content address: SHA-256 over the endpoint-scoped
// canonical JSON (see Key).
func (in *Instance) Key() (string, error) { return Key(in.desc.Endpoint, in.canon) }

// Stream reports whether the request asked for NDJSON delivery. Always
// false for unary engines (their wire forms have no stream field).
func (in *Instance) Stream() bool { return in.stream }

// Units is the progress denominator (batch size; 1 for unary engines).
func (in *Instance) Units() int { return in.units }

// Run computes the full response value — the unary leg every cached path
// shares.
func (in *Instance) Run(ctx context.Context) (any, error) { return in.run(ctx) }

// NewBatch returns a fresh per-unit view of the instance — its own unit
// accumulator, so concurrent runs of one instance cannot interfere — or nil
// for unary engines.
func (in *Instance) NewBatch() *Batch {
	if in.batch == nil {
		return nil
	}
	return in.batch()
}

// Unit is one completed unit as the erased Batch delivers it: the global
// batch index plus the per-unit error. The unit's value is already stored
// in the batch accumulator (the channel send happens after the store, so
// receiving the Unit orders the read correctly); render it with Line.
type Unit struct {
	Index int
	Err   error
}

// Batch is the erased per-unit view of one batch instance: restore fills
// units from checkpoint lines, Open computes the missing ones, Line/Body/
// Tail read the accumulator. Prepare must succeed before Open.
type Batch struct {
	// N is the full batch size.
	N int

	prepare func() error
	restore func(raw []byte) (int, bool)
	open    func(ctx context.Context, missing []int) <-chan Unit
	line    func(i int) any
	errLine func(i int, msg string) any
	body    func() (any, error)
	tail    func() any
}

// Prepare materializes the batch inputs (idempotence is not required; call
// it exactly once per Batch).
func (b *Batch) Prepare() error { return b.prepare() }

// Restore decodes one checkpoint line, stores its unit, and returns the
// covered global index; ok=false for lines that are not complete in-range
// units.
func (b *Batch) Restore(raw []byte) (int, bool) { return b.restore(raw) }

// Open computes the units whose global indices are listed in missing,
// delivering completion-ordered Units. The channel closes when every listed
// unit was delivered or the context was cancelled; after cancellation,
// remaining delivery is best-effort and the consumer may walk away.
func (b *Batch) Open(ctx context.Context, missing []int) <-chan Unit { return b.open(ctx, missing) }

// Line renders the stream/checkpoint line for the stored unit at global
// index i.
func (b *Batch) Line(i int) any { return b.line(i) }

// ErrorLine renders the per-unit failure line for global index i.
func (b *Batch) ErrorLine(i int, msg string) any { return b.errLine(i, msg) }

// Body aggregates the stored units into the unary response value.
func (b *Batch) Body() (any, error) { return b.body() }

// Tail renders the success-terminal summary line over the stored units.
func (b *Batch) Tail() any { return b.tail() }

// registry holds the Descriptors in registration order — the order the
// sync routes are mounted in.
var registry []*Descriptor

func register(d *Descriptor) {
	for _, have := range registry {
		if have.Type == d.Type || have.Endpoint == d.Endpoint {
			panic(fmt.Sprintf("engine: duplicate registration of %s (%s)", d.Type, d.Endpoint))
		}
	}
	registry = append(registry, d)
}

// Engines lists every registered engine in registration order.
func Engines() []*Descriptor {
	return append([]*Descriptor(nil), registry...)
}

// ByType resolves a job-submission type to its engine.
func ByType(typ string) (*Descriptor, bool) {
	for _, d := range registry {
		if d.Type == typ {
			return d, true
		}
	}
	return nil, false
}

// TypeNames lists the registered submission types in registration order.
func TypeNames() []string {
	names := make([]string, len(registry))
	for i, d := range registry {
		names[i] = d.Type
	}
	return names
}

// TypeList renders the accepted submission types for error messages:
// `"a", "b", or "c"`.
func TypeList() string {
	names := TypeNames()
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = fmt.Sprintf("%q", n)
	}
	if len(quoted) == 1 {
		return quoted[0]
	}
	return strings.Join(quoted[:len(quoted)-1], ", ") + ", or " + quoted[len(quoted)-1]
}

// Register erases and registers a unary engine.
func Register[Req, Result any](e Engine[Req, Result]) {
	register(describe(e, nil, nil))
}

// RegisterBatch erases and registers a batch engine.
func RegisterBatch[Req, U, Result any](e BatchEngine[Req, U, Result]) {
	register(describe[Req, Result](e, e.Streaming, func(req Req) func() *Batch {
		return func() *Batch { return newBatch(e, req) }
	}))
}

// describe erases one typed engine into its Descriptor.
func describe[Req, Result any](e Engine[Req, Result], streaming func(Req) bool, batch func(Req) func() *Batch) *Descriptor {
	m := e.Meta()
	d := &Descriptor{Type: m.Type, Endpoint: m.Endpoint}
	d.decode = func(raw []byte) (*Instance, error) {
		req, err := e.Decode(raw)
		if err != nil {
			return nil, err
		}
		in := &Instance{
			desc:  d,
			canon: e.Canonical(req),
			units: e.Units(req),
			run:   func(ctx context.Context) (any, error) { return e.Run(ctx, req) },
		}
		if streaming != nil {
			in.stream = streaming(req)
		}
		if batch != nil {
			in.batch = batch(req)
		}
		return in, nil
	}
	return d
}

// newBatch erases one batch run: the unit accumulator lives in the closure
// set, written by Restore and by the Open relay (before each channel send,
// so the consumer's receive orders the read) and read by Line/Body/Tail.
func newBatch[Req, U, Result any](e BatchEngine[Req, U, Result], req Req) *Batch {
	n := e.Units(req)
	units := make([]U, n)
	var opener func(ctx context.Context, missing []int) <-chan UnitResult[U]
	return &Batch{
		N: n,
		prepare: func() error {
			var err error
			opener, err = e.Prepare(req)
			return err
		},
		restore: func(raw []byte) (int, bool) {
			i, u, ok := e.DecodeLine(raw)
			if !ok || i < 0 || i >= n {
				return -1, false
			}
			units[i] = u
			return i, true
		},
		open: func(ctx context.Context, missing []int) <-chan Unit {
			in := opener(ctx, missing)
			out := make(chan Unit)
			go func() {
				defer close(out)
				for r := range in {
					idx := missing[r.Index]
					if r.Err == nil {
						units[idx] = r.Unit
					}
					// Keep draining after the consumer cancelled and left,
					// so the engine's senders are released and nothing
					// leaks.
					select {
					case out <- Unit{Index: idx, Err: r.Err}:
					case <-ctx.Done():
					}
				}
			}()
			return out
		},
		line:    func(i int) any { return e.Line(i, &units[i], "") },
		errLine: func(i int, msg string) any { return e.Line(i, nil, msg) },
		body:    func() (any, error) { return e.Body(req, units) },
		tail:    func() any { return e.Tail(req, units) },
	}
}

// mapStream adapts an engine's native completion channel into the opener's
// UnitResult form. The relay keeps draining src after ctx dies so the
// engine's best-effort senders are never stranded.
func mapStream[S, U any](ctx context.Context, src <-chan S, conv func(S) UnitResult[U]) <-chan UnitResult[U] {
	out := make(chan UnitResult[U])
	go func() {
		defer close(out)
		for s := range src {
			select {
			case out <- conv(s):
			case <-ctx.Done():
			}
		}
	}()
	return out
}

// DecodeStrict parses one JSON request object: unknown fields and trailing
// data are errors, so typos surface as 400s instead of silently evaluating
// a default. Shared by the sync endpoints, the nested request object of a
// job submission, and the cluster protocol bodies.
func DecodeStrict(rd io.Reader, into any) error {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid request body: trailing data after the JSON object")
	}
	return nil
}

// Key derives the content address of a canonicalized request:
// endpoint-scoped SHA-256 over its deterministic JSON encoding (struct
// fields marshal in declaration order, so equal requests hash equally).
func Key(endpoint string, canonical any) (string, error) {
	buf, err := json.Marshal(canonical)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(append([]byte(endpoint+"\n"), buf...))
	return fmt.Sprintf("%x", sum), nil
}
