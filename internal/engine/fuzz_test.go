package engine

import (
	"encoding/json"
	"testing"
)

// FuzzEngineRequestRoundTrip fuzzes the decode/validate seam of every
// registered engine with one invariant: any body that decodes must have a
// stable content address under canonicalization. The canonical form
// re-marshals to JSON that decodes again (the strict decoder accepts its
// own canonical output), and the re-decoded instance has the same cache
// key and unit count — otherwise execution knobs or field ordering would
// leak into the address and identical work would compute twice.
//
// The seed corpus is the API.md example bodies, one per endpoint, plus
// knob-heavy variants.
func FuzzEngineRequestRoundTrip(f *testing.F) {
	seeds := []struct {
		typ string
		raw string
	}{
		{"experiment", `{"p": 16, "method": "ulba", "alpha": 0.4, "iterations": 120, "compare": true}`},
		{"experiment", `{"p":4,"iterations":25,"method":"standard","seed":3,"z_threshold":1.5,"rcb":true}`},
		{"sweep", `{"sample": {"seed": 2019, "n": 1000}, "alpha_grid": 100}`},
		{"sweep", `{"instances":[{"p":4,"n":1000,"gamma":10,"w0":1,"a":0.001,"m":0.5,"omega":0.01,"c":0.2}],"workers":2,"stream":true}`},
		{"runtime", `{"p": 8, "iterations": 200, "workload": {"name": "bursty", "seed": 7}, "trigger": {"name": "menon"}}`},
		{"runtime", `{"p": 4, "iterations": 60, "workload": {"name": "amr", "seed": 7}, "trigger": {"name": "wli", "threshold": 0.2}, "speeds": [1, 2.5, 1, 4]}`},
		{"runtime", `{"p": 8, "workload": {"name": "linear", "seed": 7}, "planner": {"name": "sigma+"}}`},
		{"runtime-sweep", `{"scenarios": [{"p": 8, "workload": {"name": "linear"}, "trigger": {"name": "degradation"}}]}`},
		{"runtime-sweep", `{"sample": {"seed": 1, "n": 32}, "stream": true}`},
		{"assess", `{"sample": {"seed": 7, "n": 4}}`},
		{"assess", `{"criteria": [{"trigger": {"name": "menon"}}, {"name": "plan", "planner": {"name": "sigma+"}}], "scenarios": [{"p": 4, "workload": {"name": "linear"}}]}`},
	}
	for _, s := range seeds {
		f.Add(s.typ, []byte(s.raw))
	}
	f.Fuzz(func(t *testing.T, typ string, raw []byte) {
		d, ok := ByType(typ)
		if !ok {
			t.Skip("not a registered engine type")
		}
		inst, err := d.Decode(raw)
		if err != nil {
			return // rejected bodies just need to not panic
		}
		key, err := inst.Key()
		if err != nil {
			t.Fatalf("accepted body has no key: %v", err)
		}
		canon, err := json.Marshal(inst.Canonical())
		if err != nil {
			t.Fatalf("canonical form does not marshal: %v", err)
		}
		inst2, err := d.Decode(canon)
		if err != nil {
			t.Fatalf("canonical form %s does not re-decode: %v", canon, err)
		}
		key2, err := inst2.Key()
		if err != nil {
			t.Fatal(err)
		}
		if key != key2 {
			t.Fatalf("cache key unstable under canonical round trip: %s != %s (canonical %s)", key, key2, canon)
		}
		if inst.Units() != inst2.Units() {
			t.Fatalf("unit count unstable under canonical round trip: %d != %d", inst.Units(), inst2.Units())
		}
	})
}
