package ulba

import (
	"bytes"
	_ "embed"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"ulba/internal/imbalance"
	"ulba/internal/stats"
	"ulba/internal/trace"
)

// A Workload defines the synthetic iterative application a runtime scenario
// executes: a 1D array of work items whose weights evolve over iterations.
// It is the scenario-diversity axis of the runtime engine — the same
// harness (triggers, planners, the simulated cluster) runs over any
// workload, so LB policies can be compared far beyond the single erosion
// application of Section IV-B.
type Workload interface {
	// Name identifies the workload, matching its registry key.
	Name() string
	// Instantiate binds the workload to p PEs: it returns the total
	// number of work items and the weight function weight(item, iter).
	// The weight function must be pure — a function of (item, iter)
	// only, independent of which PE owns the item — so the application
	// dynamics are bit-identical across partitionings and LB policies,
	// and it must return non-negative finite weights.
	Instantiate(p int) (items int, weight func(item, iter int) float64, err error)
}

// ModeledWorkload is implemented by workloads that can describe themselves
// in the analytic model of Section II (Eq. 1-3). It is what lets a Planner
// drive a runtime scenario without an explicit WithModel: the schedule is
// planned on the model the workload derives from the bound configuration,
// then replayed on the simulated cluster — the paper's plan-on-the-model,
// execute-at-runtime move.
type ModeledWorkload interface {
	Workload
	// Model expresses the workload as Table I parameters for the given
	// bound scenario configuration (PE count, iterations, cost model,
	// and the LB cost knobs the estimate of C derives from).
	Model(cfg RuntimeConfig) (ModelParams, error)
}

// Zero-value defaults shared by the drifting generator family. The hot
// fraction in particular must stay one constant: ExponentialWorkload
// derives its hot blocks through LinearWorkload, so diverging defaults
// would silently desynchronize the two.
const (
	defaultDriftBase   = 1.0
	defaultDriftSpread = 0.2
	defaultHotFrac     = 0.125
)

// itemsFor applies the items-per-PE default shared by the generators.
func itemsFor(itemsPerPE, p int) (perPE, items int) {
	if itemsPerPE <= 0 {
		itemsPerPE = 64
	}
	return itemsPerPE, itemsPerPE * p
}

// baseWeights returns the deterministic per-item base weight function of
// the generators: base scaled by a +-spread uniform drawn from the item
// index, so PEs start near-balanced but not artificially identical.
func baseWeights(base, spread float64, seed uint64) func(item int) float64 {
	return func(item int) float64 {
		u := stats.HashUniform(seed, 0x5741, uint64(item))
		return base * (1 + spread*(2*u-1))
	}
}

// StationaryWorkload is the no-drift scenario: per-item weights are drawn
// once and never change. A correct trigger should (after the forced warmup
// call) never balance again; a policy that keeps firing on a stationary
// load is paying C for nothing.
type StationaryWorkload struct {
	ItemsPerPE int     // items per PE; <= 0 selects 64
	Base       float64 // mean item weight; 0 selects 1
	Spread     float64 // +- uniform fraction around Base; 0 selects 0.5
	Seed       uint64
}

// Name returns "stationary".
func (StationaryWorkload) Name() string { return "stationary" }

// Instantiate binds the workload to p PEs.
func (w StationaryWorkload) Instantiate(p int) (int, func(int, int) float64, error) {
	if err := checkPositive("stationary", p, w.Base, w.Spread); err != nil {
		return 0, nil, err
	}
	base, spread := defaultBaseSpread(w.Base, w.Spread)
	_, items := itemsFor(w.ItemsPerPE, p)
	bw := baseWeights(base, spread, w.Seed)
	return items, func(item, _ int) float64 { return bw(item) }, nil
}

// LinearWorkload is the drift scenario of Eq. 1-3: every item gains A work
// units per iteration, and the items of a few "hot" PE-aligned blocks
// additionally gain M per iteration — the synthetic analogue of the
// overloading PEs, with the hot blocks chosen by a seeded permutation
// ("not known in advance" by the partitioning).
type LinearWorkload struct {
	ItemsPerPE int     // items per PE; <= 0 selects 64
	Base       float64 // mean item weight at iteration 0; 0 selects 1
	Spread     float64 // +- uniform fraction around Base; 0 selects 0.2
	A          float64 // per-item weight growth per iteration; 0 selects 0.002
	M          float64 // extra growth per hot item per iteration; 0 selects 0.08
	HotFrac    float64 // fraction of PE blocks that are hot; 0 selects 0.125
	Seed       uint64
}

// Name returns "linear".
func (LinearWorkload) Name() string { return "linear" }

func (w LinearWorkload) normalized() LinearWorkload {
	if w.A == 0 {
		w.A = 0.002
	}
	if w.M == 0 {
		w.M = 0.08
	}
	w.Base, w.Spread, w.HotFrac = driftDefaults(w.Base, w.Spread, w.HotFrac)
	return w
}

// driftDefaults applies the shared zero-value defaults of the drifting
// generator family.
func driftDefaults(base, spread, hotFrac float64) (float64, float64, float64) {
	if base == 0 {
		base = defaultDriftBase
	}
	if spread == 0 {
		spread = defaultDriftSpread
	}
	if hotFrac == 0 {
		hotFrac = defaultHotFrac
	}
	return base, spread, hotFrac
}

// hotBlocks returns, per PE-aligned block, whether the block is hot: the
// first max(1, round(HotFrac*p)) entries of a seeded permutation of the p
// blocks.
func (w LinearWorkload) hotBlocks(p int) []bool {
	nHot := int(math.Round(w.HotFrac * float64(p)))
	if nHot < 1 {
		nHot = 1
	}
	if nHot > p {
		nHot = p
	}
	hot := make([]bool, p)
	perm := stats.NewRNG(w.Seed ^ 0x4c494e).Perm(p)
	for _, b := range perm[:nHot] {
		hot[b] = true
	}
	return hot
}

// Instantiate binds the workload to p PEs.
func (w LinearWorkload) Instantiate(p int) (int, func(int, int) float64, error) {
	if err := checkPositive("linear", p, w.Base, w.Spread); err != nil {
		return 0, nil, err
	}
	if w.A < 0 || w.M < 0 || w.HotFrac < 0 || w.HotFrac > 1 {
		return 0, nil, fmt.Errorf("ulba: linear workload: A=%g, M=%g must be non-negative and HotFrac=%g in [0,1]",
			w.A, w.M, w.HotFrac)
	}
	w = w.normalized()
	perPE, items := itemsFor(w.ItemsPerPE, p)
	hot := w.hotBlocks(p)
	bw := baseWeights(w.Base, w.Spread, w.Seed)
	return items, func(item, iter int) float64 {
		v := bw(item) + w.A*float64(iter)
		if hot[item/perPE] {
			v += w.M * float64(iter)
		}
		return v
	}, nil
}

// Model expresses the linear drift in Table I terms: N hot PEs, a = the
// even per-PE growth, m = the extra hot-PE growth, and C estimated from the
// configured LB cost knobs (gather latency and bytes into the main PE, the
// central partition scan, and the per-PE rebuild).
func (w LinearWorkload) Model(cfg RuntimeConfig) (ModelParams, error) {
	if _, _, err := w.Instantiate(cfg.P); err != nil {
		return ModelParams{}, err
	}
	w = w.normalized()
	cfg = cfg.Normalized()
	perPE, items := itemsFor(w.ItemsPerPE, cfg.P)
	if items != cfg.Items {
		return ModelParams{}, fmt.Errorf("ulba: linear workload models %d items, config has %d", items, cfg.Items)
	}
	hot := w.hotBlocks(cfg.P)
	n := 0
	for _, h := range hot {
		if h {
			n++
		}
	}
	bw := baseWeights(w.Base, w.Spread, w.Seed)
	w0 := 0.0
	for j := 0; j < items; j++ {
		w0 += bw(j)
	}
	mp := ModelParams{
		P:     cfg.P,
		N:     n,
		Gamma: cfg.Iterations,
		W0:    w0 * cfg.FlopPerUnit,
		A:     w.A * float64(perPE) * cfg.FlopPerUnit,
		M:     w.M * float64(perPE) * cfg.FlopPerUnit,
		Omega: cfg.Cost.FLOPS,
		C:     estimateLBCost(cfg),
	}
	mp.DeltaW = mp.A*float64(mp.P) + mp.M*float64(mp.N)
	return mp, nil
}

// estimateLBCost predicts the measured cost of one synthetic LB step in
// seconds from the configured cost knobs: the linear gather into the main
// PE, the central partition scan, and the per-PE rebuild. Migration is
// workload-dependent and left out, so the estimate is a slight lower bound.
func estimateLBCost(cfg RuntimeConfig) float64 {
	perPE := float64(cfg.Items) / float64(cfg.P)
	flop := cfg.PartitionFlopPerItem*float64(cfg.Items) + cfg.RebuildFlopPerItem*perPE
	comm := float64(2*cfg.P)*cfg.Cost.Latency + 8*float64(cfg.Items)*cfg.Cost.ByteTime
	return flop/cfg.Cost.FLOPS + comm
}

// ExponentialWorkload grows the hot blocks geometrically: hot items
// multiply by Growth every iteration while the rest stay put. It is the
// stress case for linear-extrapolation triggers (Menon's fit persistently
// underestimates tomorrow's imbalance).
type ExponentialWorkload struct {
	ItemsPerPE int     // items per PE; <= 0 selects 64
	Base       float64 // mean item weight at iteration 0; 0 selects 1
	Spread     float64 // +- uniform fraction around Base; 0 selects 0.2
	Growth     float64 // per-iteration multiplier on hot items; 0 selects 1.02
	HotFrac    float64 // fraction of PE blocks that are hot; 0 selects 0.125
	Seed       uint64
}

// Name returns "exponential".
func (ExponentialWorkload) Name() string { return "exponential" }

// Instantiate binds the workload to p PEs.
func (w ExponentialWorkload) Instantiate(p int) (int, func(int, int) float64, error) {
	if err := checkPositive("exponential", p, w.Base, w.Spread); err != nil {
		return 0, nil, err
	}
	if w.Growth < 0 || w.HotFrac < 0 || w.HotFrac > 1 {
		return 0, nil, fmt.Errorf("ulba: exponential workload: Growth=%g must be non-negative and HotFrac=%g in [0,1]",
			w.Growth, w.HotFrac)
	}
	growth := w.Growth
	if growth == 0 {
		growth = 1.02
	}
	base, spread, hotFrac := driftDefaults(w.Base, w.Spread, w.HotFrac)
	perPE, items := itemsFor(w.ItemsPerPE, p)
	hot := LinearWorkload{HotFrac: hotFrac, Seed: w.Seed}.hotBlocks(p)
	bw := baseWeights(base, spread, w.Seed)
	return items, func(item, iter int) float64 {
		v := bw(item)
		if hot[item/perPE] {
			v *= math.Pow(growth, float64(iter))
		}
		return v
	}, nil
}

// BurstyWorkload injects square-wave load bursts: during the active phase
// of every period, one PE-aligned block — rotating deterministically from
// burst to burst — carries Amplitude extra weight per item. Load appears,
// moves, and vanishes, which is exactly what fixed-interval policies
// mis-handle and reset-after-balance trigger logic must survive.
type BurstyWorkload struct {
	ItemsPerPE int     // items per PE; <= 0 selects 64
	Base       float64 // mean item weight; 0 selects 1
	Amplitude  float64 // extra weight per hot item during a burst; 0 selects 4
	Period     int     // iterations per burst cycle; <= 0 selects 24
	Duty       float64 // active fraction of each period; 0 selects 0.5
	Seed       uint64
}

// Name returns "bursty".
func (BurstyWorkload) Name() string { return "bursty" }

// Instantiate binds the workload to p PEs.
func (w BurstyWorkload) Instantiate(p int) (int, func(int, int) float64, error) {
	if err := checkPositive("bursty", p, w.Base, 0); err != nil {
		return 0, nil, err
	}
	if w.Amplitude < 0 || w.Duty < 0 || w.Duty > 1 {
		return 0, nil, fmt.Errorf("ulba: bursty workload: Amplitude=%g must be non-negative and Duty=%g in [0,1]",
			w.Amplitude, w.Duty)
	}
	base := w.Base
	if base == 0 {
		base = 1
	}
	amp := w.Amplitude
	if amp == 0 {
		amp = 4
	}
	period := w.Period
	if period <= 0 {
		period = 24
	}
	duty := w.Duty
	if duty == 0 {
		duty = 0.5
	}
	active := int(duty * float64(period))
	if active < 1 {
		active = 1
	}
	perPE, items := itemsFor(w.ItemsPerPE, p)
	bw := baseWeights(base, 0.2, w.Seed)
	seed := w.Seed
	return items, func(item, iter int) float64 {
		v := bw(item)
		burst := iter / period
		if iter%period < active {
			hotBlock := int(stats.Mix64(seed^0x4255^uint64(burst)) % uint64(p))
			if item/perPE == hotBlock {
				v += amp
			}
		}
		return v
	}, nil
}

// OutlierWorkload models a heavy-tailed workload-increase rate: every item,
// at every iteration, has a small probability of receiving a truncated-
// Pareto spike that decays linearly over Window iterations. Most iterations
// are quiet; rare items briefly dominate the iteration time — the regime
// where z-score outlier detection (and trigger robustness against it)
// matters.
type OutlierWorkload struct {
	ItemsPerPE int     // items per PE; <= 0 selects 64
	Base       float64 // mean item weight; 0 selects 1
	Prob       float64 // per-item per-iteration spike probability; 0 selects 0.02
	Scale      float64 // spike scale; 0 selects 2
	Tail       float64 // Pareto tail index (smaller = heavier); 0 selects 1.5
	MaxSpike   float64 // truncation of a single spike; 0 selects 50
	Window     int     // linear-decay length of a spike; <= 0 selects 16
	Seed       uint64
}

// Name returns "outlier".
func (OutlierWorkload) Name() string { return "outlier" }

// Instantiate binds the workload to p PEs.
func (w OutlierWorkload) Instantiate(p int) (int, func(int, int) float64, error) {
	if err := checkPositive("outlier", p, w.Base, 0); err != nil {
		return 0, nil, err
	}
	if w.Prob < 0 || w.Prob > 1 || w.Scale < 0 || w.Tail < 0 || w.MaxSpike < 0 {
		return 0, nil, fmt.Errorf("ulba: outlier workload: Prob=%g in [0,1], Scale=%g, Tail=%g, MaxSpike=%g non-negative",
			w.Prob, w.Scale, w.Tail, w.MaxSpike)
	}
	base, prob, scale, tail, maxSpike, window := w.Base, w.Prob, w.Scale, w.Tail, w.MaxSpike, w.Window
	if base == 0 {
		base = 1
	}
	if prob == 0 {
		prob = 0.02
	}
	if scale == 0 {
		scale = 2
	}
	if tail == 0 {
		tail = 1.5
	}
	if maxSpike == 0 {
		maxSpike = 50
	}
	if window <= 0 {
		window = 16
	}
	_, items := itemsFor(w.ItemsPerPE, p)
	bw := baseWeights(base, 0.2, w.Seed)
	seed := w.Seed
	spike := func(item, iter int) float64 {
		if stats.HashUniform(seed, 1, uint64(item), uint64(iter)) >= prob {
			return 0
		}
		u := stats.HashUniform(seed, 2, uint64(item), uint64(iter))
		s := scale * (math.Pow(1-u, -1/tail) - 1)
		if s > maxSpike {
			s = maxSpike
		}
		return s
	}
	return items, func(item, iter int) float64 {
		v := bw(item)
		lo := iter - window + 1
		if lo < 0 {
			lo = 0
		}
		for k := lo; k <= iter; k++ {
			if s := spike(item, k); s > 0 {
				v += s * float64(window-(iter-k)) / float64(window)
			}
		}
		return v
	}, nil
}

// MiniFEWorkload reproduces the box-decomposition skew of miniFE's problem
// setup: an Nx*Ny*Nz hexahedral grid is split over p near-cubic blocks with
// integer ceil/floor widths, so whenever a block count does not divide its
// grid dimension the blocks own different row counts — the rows-per-proc
// imbalance miniFE's imbalance.hpp reports as "(min/max vs avg)%". Every
// item of a PE block carries weight proportional to the block's row count,
// normalized so the mean item weight is Base; the load is stationary, so a
// correct trigger balances exactly once and a policy that keeps firing is
// paying C for nothing.
type MiniFEWorkload struct {
	ItemsPerPE int     // items per PE; <= 0 selects 64
	Nx, Ny, Nz int     // global grid dimensions; <= 0 selects 61 each
	Base       float64 // mean item weight; 0 selects 1
	Seed       uint64  // permutes the block-to-PE assignment
}

// Name returns "minife".
func (MiniFEWorkload) Name() string { return "minife" }

func (w MiniFEWorkload) dims() (nx, ny, nz int) {
	nx, ny, nz = w.Nx, w.Ny, w.Nz
	if nx <= 0 {
		nx = 61
	}
	if ny <= 0 {
		ny = 61
	}
	if nz <= 0 {
		nz = 61
	}
	return nx, ny, nz
}

// Instantiate binds the workload to p PEs.
func (w MiniFEWorkload) Instantiate(p int) (int, func(int, int) float64, error) {
	if err := checkPositive("minife", p, w.Base, 0); err != nil {
		return 0, nil, err
	}
	nx, ny, nz := w.dims()
	px, py, pz := imbalance.BoxFactors(p)
	if nx < px || ny < py || nz < pz {
		return 0, nil, fmt.Errorf("ulba: minife workload: grid %dx%dx%d too small for the %dx%dx%d box decomposition of %d PEs",
			nx, ny, nz, px, py, pz, p)
	}
	base := w.Base
	if base == 0 {
		base = 1
	}
	blockRows := imbalance.BoxRows(nx, ny, nz, px, py, pz)
	// Per-item weight of a block: the block's share of the grid, scaled so
	// the mean item weight across the machine is Base.
	scale := base * float64(p) / float64(nx*ny*nz)
	blockW := make([]float64, p)
	perm := stats.NewRNG(w.Seed ^ 0x6d696e69).Perm(p)
	for i, b := range perm {
		blockW[i] = float64(blockRows[b]) * scale
	}
	perPE, items := itemsFor(w.ItemsPerPE, p)
	return items, func(item, _ int) float64 {
		return blockW[item/perPE]
	}, nil
}

// Model expresses the stationary box skew in Table I terms; see
// stationaryModel for why every planner yields the empty schedule here.
func (w MiniFEWorkload) Model(cfg RuntimeConfig) (ModelParams, error) {
	return stationaryModel(w, cfg)
}

// AMRWorkload models a GAMER-style adaptive-mesh-refinement load: every
// item is a patch at a refinement level in [0, Levels), a patch at level l
// updates 2^l times as often as a root patch (GAMER's NUpdateLv weighting),
// and the refinement front — the region of deepest refinement — drifts
// across the domain at Drift domain-fractions per iteration, dragging the
// expensive patches from PE block to PE block. The per-rank imbalance this
// produces is exactly the weighted load imbalance WLI = (max-avg)/avg that
// GAMER's LB_EstimateLoadImbalance measures; pair the workload with the
// "wli" trigger for the exemplar's redistribute-on-tolerance policy.
type AMRWorkload struct {
	ItemsPerPE int     // items per PE; <= 0 selects 64
	Levels     int     // refinement levels; <= 0 selects 4, max 16
	Base       float64 // weight of a level-0 patch; 0 selects 1
	Spread     float64 // +- uniform fraction around Base; 0 selects 0.2
	Drift      float64 // front movement in domain fractions per iteration; 0 selects 0.004
	Seed       uint64
}

// Name returns "amr".
func (AMRWorkload) Name() string { return "amr" }

// Instantiate binds the workload to p PEs.
func (w AMRWorkload) Instantiate(p int) (int, func(int, int) float64, error) {
	if err := checkPositive("amr", p, w.Base, w.Spread); err != nil {
		return 0, nil, err
	}
	if w.Levels < 0 || w.Levels > 16 {
		return 0, nil, fmt.Errorf("ulba: amr workload: Levels = %d out of [1, 16]", w.Levels)
	}
	if w.Drift < 0 || w.Drift > 1 {
		return 0, nil, fmt.Errorf("ulba: amr workload: Drift = %g out of [0, 1]", w.Drift)
	}
	levels := w.Levels
	if levels == 0 {
		levels = 4
	}
	drift := w.Drift
	if drift == 0 {
		drift = 0.004
	}
	base, spread := w.Base, w.Spread
	if base == 0 {
		base = 1
	}
	if spread == 0 {
		spread = 0.2
	}
	_, items := itemsFor(w.ItemsPerPE, p)
	bw := baseWeights(base, spread, w.Seed)
	center0 := stats.HashUniform(w.Seed, 0x414d52)
	return items, func(item, iter int) float64 {
		pos := (float64(item) + 0.5) / float64(items)
		center := center0 + drift*float64(iter)
		center -= math.Floor(center)
		level := imbalance.FrontLevel(pos, center, levels)
		return bw(item) * imbalance.LevelWeight(level)
	}, nil
}

// Model expresses the AMR load in Table I terms; see stationaryModel — the
// analytic model describes imbalance accruing linearly on top of a balanced
// partition, so a *moving* refinement front is invisible to it and planners
// yield the empty schedule. The reactive triggers are the policies that
// engage this workload.
func (w AMRWorkload) Model(cfg RuntimeConfig) (ModelParams, error) {
	return stationaryModel(w, cfg)
}

// TargetImbalanceWorkload reproduces the cluster-dlb-benchmarks synthetic
// generator: per-PE-block work is drawn at random but constrained to hit an
// exact imbalance — the heaviest block carries Target times the average
// (see imbalance.TargetPartition). Every Period iterations the partition is
// redrawn with a fresh seed, so the overloaded block jumps around the
// machine the way the benchmark's slow rank moves between runs. Reactive
// policies must re-detect the hot spot after every jump; the imbalance
// magnitude itself is exactly dialed in, which makes the workload the
// natural calibration input for trigger thresholds.
type TargetImbalanceWorkload struct {
	ItemsPerPE int     // items per PE; <= 0 selects 64
	Target     float64 // block imbalance max/avg; 0 selects 1.5, must be in [1, p]
	Period     int     // iterations between redraws; <= 0 selects 32
	Base       float64 // mean item weight; 0 selects 1
	Seed       uint64
}

// Name returns "target".
func (TargetImbalanceWorkload) Name() string { return "target" }

// Instantiate binds the workload to p PEs.
func (w TargetImbalanceWorkload) Instantiate(p int) (int, func(int, int) float64, error) {
	if err := checkPositive("target", p, w.Base, 0); err != nil {
		return 0, nil, err
	}
	target := w.Target
	if target == 0 {
		target = 1.5
	}
	if target > float64(p) {
		return 0, nil, fmt.Errorf("ulba: target workload: imbalance %g not reachable on %d PEs (max/avg is at most p)",
			target, p)
	}
	base := w.Base
	if base == 0 {
		base = 1
	}
	period := w.Period
	if period <= 0 {
		period = 32
	}
	// Probe the generator once so invalid targets fail here, not mid-run.
	if _, err := imbalance.TargetPartition(p, base, target, w.Seed); err != nil {
		return 0, nil, fmt.Errorf("ulba: target workload: %w", err)
	}
	perPE, items := itemsFor(w.ItemsPerPE, p)
	seed := w.Seed
	// Draws are memoized per redraw index: the partition is a pure
	// function of (seed, draw), so concurrent ranks computing the same
	// draw race only on identical values and the cache just avoids
	// re-running the generator per item.
	draws := &targetDrawCache{draws: map[int][]float64{}}
	return items, func(item, iter int) float64 {
		return draws.blockWeights(iter/period, p, base, target, seed)[item/perPE]
	}, nil
}

// Model expresses the target-imbalance draws in Table I terms; see
// stationaryModel — a standing (re-drawn) skew has no linear drift for the
// model to anticipate, so planners yield the empty schedule.
func (w TargetImbalanceWorkload) Model(cfg RuntimeConfig) (ModelParams, error) {
	return stationaryModel(w, cfg)
}

// targetDrawCache memoizes the per-block weights of each redraw of a
// TargetImbalanceWorkload. Values are deterministic in (seed, draw), so the
// cache is transparent; the mutex only serializes map access from
// concurrently simulated ranks.
type targetDrawCache struct {
	mu    sync.Mutex
	draws map[int][]float64
}

func (c *targetDrawCache) blockWeights(draw, p int, base, target float64, seed uint64) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bw, ok := c.draws[draw]; ok {
		return bw
	}
	drawSeed := stats.Mix64(seed ^ 0x74677462616c ^ uint64(draw)*0x9e3779b97f4a7c15)
	parts, err := imbalance.TargetPartition(p, base, target, drawSeed)
	if err != nil {
		// Unreachable: Instantiate validated the arguments.
		panic(err)
	}
	// The generator pins the worst block to the last slot; a per-draw
	// permutation moves the hot spot around the machine.
	bw := make([]float64, p)
	perm := stats.NewRNG(drawSeed ^ 0x7065726d).Perm(p)
	for i, b := range perm {
		bw[i] = parts[b]
	}
	c.draws[draw] = bw
	return bw
}

// stationaryModel expresses a workload without modeled drift in Table I
// terms: the iteration-0 total workload, no overloading PEs, zero growth.
// The analytic model of the paper describes imbalance *accruing* from
// linear drift on top of a balanced partition; a standing skew (miniFE
// boxes, target-imbalance draws) or a moving refinement front (AMR) is
// invisible to it, so every planner yields the empty schedule — there is
// nothing for anticipation to anticipate, and the reactive triggers
// (degradation, menon, wli) are the policies that engage these workloads.
func stationaryModel(w Workload, cfg RuntimeConfig) (ModelParams, error) {
	items, weight, err := w.Instantiate(cfg.P)
	if err != nil {
		return ModelParams{}, err
	}
	cfg = cfg.Normalized()
	if items != cfg.Items {
		return ModelParams{}, fmt.Errorf("ulba: workload %q models %d items, config has %d", w.Name(), items, cfg.Items)
	}
	w0 := 0.0
	for j := 0; j < items; j++ {
		w0 += weight(j, 0)
	}
	return ModelParams{
		P:     cfg.P,
		N:     0,
		Gamma: cfg.Iterations,
		W0:    w0 * cfg.FlopPerUnit,
		Omega: cfg.Cost.FLOPS,
		C:     estimateLBCost(cfg),
	}, nil
}

// TraceWorkload replays a recorded weight matrix: row i holds the per-item
// weights of iteration i. Iterations beyond the trace clamp to the last
// row. It is the bridge from measured applications to the scenario engine:
// record per-item (or per-PE) loads once, then evaluate every Trigger x
// Planner pair against the exact same history.
type TraceWorkload struct {
	Rows [][]float64 // per-iteration item weights; all rows equal length
}

// Name returns "trace".
func (TraceWorkload) Name() string { return "trace" }

// Instantiate binds the trace to p PEs: the item count is the trace width,
// which must cover at least one item per PE.
func (w TraceWorkload) Instantiate(p int) (int, func(int, int) float64, error) {
	if p <= 0 {
		return 0, nil, fmt.Errorf("ulba: trace workload needs a positive PE count, got %d", p)
	}
	if len(w.Rows) == 0 || len(w.Rows[0]) == 0 {
		return 0, nil, fmt.Errorf("ulba: trace workload has no data; load one with LoadTraceWorkload")
	}
	items := len(w.Rows[0])
	for i, row := range w.Rows {
		if len(row) != items {
			return 0, nil, fmt.Errorf("ulba: trace row %d has %d items, want %d", i, len(row), items)
		}
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, nil, fmt.Errorf("ulba: trace weight [%d][%d] = %g must be non-negative and finite", i, j, v)
			}
		}
	}
	if items < p {
		return 0, nil, fmt.Errorf("ulba: trace has %d items, fewer than %d PEs", items, p)
	}
	rows := w.Rows
	return items, func(item, iter int) float64 {
		if iter >= len(rows) {
			iter = len(rows) - 1
		}
		return rows[iter][item]
	}, nil
}

// LoadTraceWorkload parses a CSV weight matrix (one row per iteration, one
// column per item, optional header) into a TraceWorkload.
func LoadTraceWorkload(r io.Reader) (TraceWorkload, error) {
	_, rows, err := trace.ParseCSVMatrix(r)
	if err != nil {
		return TraceWorkload{}, fmt.Errorf("ulba: %w", err)
	}
	return TraceWorkload{Rows: rows}, nil
}

// demoTraceCSV is a small checked-in weight matrix (a load wave sweeping
// across 16 items over 48 iterations, plus a ramp on one item) that backs
// the "trace" registry entry, so the replay path is selectable by name
// without an external file.
//
//go:embed testdata/demo_trace.csv
var demoTraceCSV []byte

// DemoTraceWorkload returns the built-in demonstration trace (the "trace"
// registry entry). Real studies load their own recording with
// LoadTraceWorkload or construct TraceWorkload directly.
func DemoTraceWorkload() TraceWorkload {
	w, err := LoadTraceWorkload(bytes.NewReader(demoTraceCSV))
	if err != nil {
		panic(err) // unreachable: the demo trace is checked in and tested
	}
	return w
}

func checkPositive(name string, p int, base, spread float64) error {
	if p <= 0 {
		return fmt.Errorf("ulba: %s workload needs a positive PE count, got %d", name, p)
	}
	if base < 0 {
		return fmt.Errorf("ulba: %s workload: Base = %g must be non-negative", name, base)
	}
	if spread < 0 || spread > 1 {
		return fmt.Errorf("ulba: %s workload: Spread = %g out of [0,1]", name, spread)
	}
	return nil
}

func defaultBaseSpread(base, spread float64) (float64, float64) {
	if base == 0 {
		base = 1
	}
	if spread == 0 {
		spread = 0.5
	}
	return base, spread
}

// WorkloadFactory constructs a workload with its default configuration.
type WorkloadFactory func() Workload

var (
	workloadMu  sync.RWMutex
	workloadReg = map[string]WorkloadFactory{}
)

// RegisterWorkload makes a workload selectable by name, e.g. from the
// -workload flag of the CLIs. It errors on the empty name, a nil factory,
// or a duplicate registration.
func RegisterWorkload(name string, f WorkloadFactory) error {
	if name == "" {
		return fmt.Errorf("ulba: workload name must not be empty")
	}
	if f == nil {
		return fmt.Errorf("ulba: workload %q: nil factory", name)
	}
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if _, dup := workloadReg[name]; dup {
		return fmt.Errorf("ulba: workload %q already registered", name)
	}
	workloadReg[name] = f
	return nil
}

// NewWorkload constructs the registered workload with the given name.
func NewWorkload(name string) (Workload, error) {
	workloadMu.RLock()
	f, ok := workloadReg[name]
	workloadMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ulba: unknown workload %q (registered: %v)", name, WorkloadNames())
	}
	return f(), nil
}

// WorkloadNames lists the registered workloads in sorted order. The slice
// is a fresh copy: mutating it cannot corrupt the registry.
func WorkloadNames() []string {
	workloadMu.RLock()
	defer workloadMu.RUnlock()
	names := make([]string, 0, len(workloadReg))
	for n := range workloadReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func mustRegisterWorkload(name string, f WorkloadFactory) {
	if err := RegisterWorkload(name, f); err != nil {
		panic(err)
	}
}

func init() {
	mustRegisterWorkload("stationary", func() Workload { return StationaryWorkload{} })
	mustRegisterWorkload("linear", func() Workload { return LinearWorkload{} })
	mustRegisterWorkload("exponential", func() Workload { return ExponentialWorkload{} })
	mustRegisterWorkload("bursty", func() Workload { return BurstyWorkload{} })
	mustRegisterWorkload("outlier", func() Workload { return OutlierWorkload{} })
	mustRegisterWorkload("trace", func() Workload { return DemoTraceWorkload() })
	mustRegisterWorkload("minife", func() Workload { return MiniFEWorkload{} })
	mustRegisterWorkload("amr", func() Workload { return AMRWorkload{} })
	mustRegisterWorkload("target", func() Workload { return TargetImbalanceWorkload{} })
}
