package ulba_test

import (
	"math"
	"reflect"
	"testing"

	"ulba"
)

// triggerCase drives one trigger state machine through a scripted run: at
// step i the trigger observes times[i], is asked ShouldFire against
// thresholds[i], and — when it fires and resetAfterFire is set — is Reset,
// modeling the balancer running (the runner's contract).
type triggerCase struct {
	name           string // registry name the case covers
	trigger        ulba.Trigger
	times          []float64
	thresholds     []float64
	wli            []float64 // optional per-step WLI fed via ObserveImbalance
	wantFire       []bool
	resetAfterFire bool
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func ramp(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + step*float64(i)
	}
	return out
}

func triggerCases(t *testing.T) []triggerCase {
	t.Helper()
	fromRegistry := func(name string) ulba.Trigger {
		trig, err := ulba.NewTrigger(name)
		if err != nil {
			t.Fatal(err)
		}
		return trig
	}
	inf := math.Inf(1)
	return []triggerCase{
		{
			// The static baseline ignores everything, even a zero
			// threshold.
			name:       "never",
			trigger:    fromRegistry("never"),
			times:      ramp(1, 1, 6),
			thresholds: repeat(0, 6),
			wantFire:   []bool{false, false, false, false, false, false},
		},
		{
			// Fixed interval: fires on the 3rd observation after every
			// reset, threshold ignored (even infinite).
			name:           "periodic",
			trigger:        ulba.PeriodicTrigger{Every: 3},
			times:          repeat(1, 8),
			thresholds:     repeat(inf, 8),
			wantFire:       []bool{false, false, true, false, false, true, false, false},
			resetAfterFire: true,
		},
		{
			// A periodic trigger left unreset keeps reporting fire once
			// the interval elapsed.
			name:       "periodic",
			trigger:    ulba.PeriodicTrigger{Every: 2},
			times:      repeat(1, 4),
			thresholds: repeat(0, 4),
			wantFire:   []bool{false, true, true, true},
		},
		{
			// Degradation accumulates median-of-3 minus the reference
			// (the first time after a reset). Constant times never
			// accumulate, so it never fires.
			name:       "degradation",
			trigger:    fromRegistry("degradation"),
			times:      repeat(2, 6),
			thresholds: repeat(0.001, 6),
			wantFire:   []bool{false, false, false, false, false, false},
		},
		{
			// Times 1, 2, 3, ... with reference 1: the degradation
			// accumulates 0, 0.5, 1.5, 3, 5 (medians 1, 1.5, 2, 2.5, 3
			// minus the reference, summed). Threshold 3 is reached at
			// the 4th observation; after the reset the accumulation
			// restarts from the new reference 5.
			name:           "degradation",
			trigger:        fromRegistry("degradation"),
			times:          ramp(1, 1, 8),
			thresholds:     repeat(3, 8),
			wantFire:       []bool{false, false, false, true, false, false, false, true},
			resetAfterFire: true,
		},
		{
			// An infinite threshold (no LB-cost estimate yet) must never
			// fire, however much degradation accumulated.
			name:       "degradation",
			trigger:    fromRegistry("degradation"),
			times:      ramp(1, 5, 6),
			thresholds: repeat(inf, 6),
			wantFire:   []bool{false, false, false, false, false, false},
		},
		{
			// Menon fits the slope of the observed times and fires at
			// tau = sqrt(2*C/slope): slope 1, C = 8 -> tau = 4
			// observations.
			name:           "menon",
			trigger:        fromRegistry("menon"),
			times:          ramp(1, 1, 10),
			thresholds:     repeat(8, 10),
			wantFire:       []bool{false, false, false, true, false, false, false, true, false, false},
			resetAfterFire: true,
		},
		{
			// A perfectly balanced (flat) application has slope zero:
			// Menon never fires.
			name:       "menon",
			trigger:    fromRegistry("menon"),
			times:      repeat(3, 8),
			thresholds: repeat(0.1, 8),
			wantFire:   []bool{false, false, false, false, false, false, false, false},
		},
		{
			// The WLI comparator fires whenever the last observed
			// imbalance exceeds its threshold, is reset by the balancer
			// running, and ignores the iteration times and the LB-cost
			// threshold entirely.
			name:           "wli",
			trigger:        ulba.WLITrigger{Threshold: 0.25},
			times:          repeat(1, 6),
			thresholds:     repeat(inf, 6),
			wli:            []float64{0.1, 0.2, 0.3, 0.1, 0.4, 0.2},
			wantFire:       []bool{false, false, true, false, true, false},
			resetAfterFire: true,
		},
		{
			// Without ObserveImbalance feeds the trigger never fires: it
			// reacts to the shape of the load, not its cost — huge
			// iteration times alone are not imbalance.
			name:       "wli",
			trigger:    fromRegistry("wli"),
			times:      ramp(10, 10, 5),
			thresholds: repeat(0, 5),
			wantFire:   []bool{false, false, false, false, false},
		},
		{
			// Schedule replay: entries 2 and 5 fire after the 2nd and
			// 5th observed iterations, regardless of the thresholds.
			name:           "schedule",
			trigger:        ulba.ScheduleTrigger{Schedule: ulba.Schedule{2, 5}},
			times:          repeat(1, 7),
			thresholds:     repeat(inf, 7),
			wantFire:       []bool{false, true, false, false, true, false, false},
			resetAfterFire: true,
		},
		{
			// The registry's default replay trigger carries an empty
			// plan: it never fires.
			name:       "schedule",
			trigger:    fromRegistry("schedule"),
			times:      repeat(1, 4),
			thresholds: repeat(0, 4),
			wantFire:   []bool{false, false, false, false},
		},
	}
}

// playTrigger runs one scripted case against a fresh state machine and
// returns the fire sequence.
func playTrigger(t *testing.T, tc triggerCase) []bool {
	t.Helper()
	rt := tc.trigger.New()
	got := make([]bool, len(tc.times))
	for i, obs := range tc.times {
		rt.Observe(obs)
		if tc.wli != nil {
			// The runner's contract: ObserveImbalance follows Observe.
			obs, ok := rt.(ulba.ImbalanceObserver)
			if !ok {
				t.Fatalf("%s: trigger does not implement ImbalanceObserver", tc.name)
			}
			obs.ObserveImbalance(tc.wli[i])
		}
		got[i] = rt.ShouldFire(tc.thresholds[i])
		if got[i] && tc.resetAfterFire {
			rt.Reset()
		}
	}
	return got
}

func TestTriggerStateMachines(t *testing.T) {
	for _, tc := range triggerCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			if got := playTrigger(t, tc); !reflect.DeepEqual(got, tc.wantFire) {
				t.Fatalf("fire sequence %v, want %v", got, tc.wantFire)
			}
		})
	}
}

// TestTriggerReplayDeterminism pins the collective-decision contract: two
// fresh state machines from the same Trigger fed the identical observation
// stream make identical decisions at every step — what every rank of a run
// relies on to stay deadlock-free.
func TestTriggerReplayDeterminism(t *testing.T) {
	for _, tc := range triggerCases(t) {
		a := playTrigger(t, tc)
		b := playTrigger(t, tc)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two identical replays diverged: %v vs %v", tc.name, a, b)
		}
	}
}

// TestTriggerTableCoversRegistry fails when a trigger is registered without
// a state-machine case above, so the table cannot silently fall behind the
// registry.
func TestTriggerTableCoversRegistry(t *testing.T) {
	covered := make(map[string]bool)
	for _, tc := range triggerCases(t) {
		covered[tc.name] = true
	}
	for _, name := range ulba.TriggerNames() {
		if !covered[name] {
			t.Errorf("registered trigger %q has no state-machine test case", name)
		}
	}
}

// TestTriggerRegistryRoundTrip checks every registered trigger constructs,
// reports its registry name, and produces independent state machines.
func TestTriggerRegistryRoundTrip(t *testing.T) {
	for _, name := range ulba.TriggerNames() {
		trig, err := ulba.NewTrigger(name)
		if err != nil {
			t.Fatal(err)
		}
		if trig.Name() != name {
			t.Errorf("trigger %q reports Name() = %q", name, trig.Name())
		}
		a, b := trig.New(), trig.New()
		// Advancing one state machine must not advance the other: feed a
		// a long ramp and verify a fresh b still behaves freshly.
		for i := 0; i < 20; i++ {
			a.Observe(float64(i))
			a.ShouldFire(1)
		}
		if fired := b.ShouldFire(0.0001); fired && name != "periodic" {
			t.Errorf("trigger %q: fresh state machine fired without observations", name)
		}
	}
}
