package ulba

import "fmt"

// settings is the mutable state the functional options act on. Experiment
// and Sweep share one option vocabulary; each option declares the builders
// it applies to, and the builders reject options outside their scope with a
// clear error instead of silently ignoring them.
type settings struct {
	cfg       RunConfig
	seed      *uint64
	trigger   Trigger
	planner   Planner
	model     *ModelParams
	workers   int
	alphaGrid int
	workload  Workload
	speeds    []float64
}

type optionScope int

const (
	scopeExperiment optionScope = 1 << iota
	scopeSweep
	scopeRuntime
	scopeRuntimeSweep
	scopeAssessment
)

// Option configures an Experiment (see New) or a Sweep (see NewSweep).
// Options are applied in order; when two options set the same field, the
// later one wins.
type Option struct {
	name  string
	scope optionScope
	apply func(*settings) error
}

func experimentOption(name string, apply func(*settings) error) Option {
	return Option{name: name, scope: scopeExperiment, apply: apply}
}

func sweepOption(name string, apply func(*settings) error) Option {
	return Option{name: name, scope: scopeSweep, apply: apply}
}

func runtimeOption(name string, apply func(*settings) error) Option {
	return Option{name: name, scope: scopeRuntime, apply: apply}
}

func sharedOption(name string, apply func(*settings) error) Option {
	return Option{name: name, scope: scopeExperiment | scopeSweep | scopeRuntime, apply: apply}
}

// poolOption marks an option that applies to every builder, including the
// worker-pool-only RuntimeSweep and Assessment.
func poolOption(name string, apply func(*settings) error) Option {
	return Option{name: name, scope: scopeExperiment | scopeSweep | scopeRuntime | scopeRuntimeSweep | scopeAssessment, apply: apply}
}

// runOption marks an option shared by the two run builders (Experiment and
// RuntimeExperiment) but meaningless to a Sweep.
func runOption(name string, apply func(*settings) error) Option {
	return Option{name: name, scope: scopeExperiment | scopeRuntime, apply: apply}
}

func applyOptions(s *settings, scope optionScope, kind string, opts []Option) error {
	for _, o := range opts {
		if o.apply == nil {
			return fmt.Errorf("ulba: zero-value Option passed to %s", kind)
		}
		if o.scope&scope == 0 {
			return fmt.Errorf("ulba: option %s does not apply to a %s", o.name, kind)
		}
		if err := o.apply(s); err != nil {
			return err
		}
	}
	return nil
}

// WithMethod selects the load-balancing method (Standard or ULBA).
func WithMethod(m Method) Option {
	return experimentOption("WithMethod", func(s *settings) error {
		s.cfg.Method = m
		return nil
	})
}

// WithAlpha fixes the ULBA underloading fraction (paper default: 0.4).
func WithAlpha(alpha float64) Option {
	return experimentOption("WithAlpha", func(s *settings) error {
		if alpha < 0 || alpha > 1 {
			return fmt.Errorf("ulba: WithAlpha(%g) out of [0,1]", alpha)
		}
		s.cfg.Alpha = alpha
		s.cfg.AdaptiveAlpha = false
		return nil
	})
}

// WithAdaptiveAlpha switches ULBA to the adaptive-alpha extension: alpha is
// chosen at runtime from the estimated fraction of overloading PEs.
func WithAdaptiveAlpha() Option {
	return experimentOption("WithAdaptiveAlpha", func(s *settings) error {
		s.cfg.AdaptiveAlpha = true
		return nil
	})
}

// WithIterations sets the run length gamma.
func WithIterations(n int) Option {
	return runOption("WithIterations", func(s *settings) error {
		if n <= 0 {
			return fmt.Errorf("ulba: WithIterations(%d) must be positive", n)
		}
		s.cfg.Iterations = n
		return nil
	})
}

// WithApp replaces the application instance (geometry, rocks, seed).
func WithApp(app AppConfig) Option {
	return experimentOption("WithApp", func(s *settings) error {
		s.cfg.App = app
		return nil
	})
}

// WithCostModel replaces the simulated cluster's cost model.
func WithCostModel(cm CostModel) Option {
	return runOption("WithCostModel", func(s *settings) error {
		s.cfg.Cost = cm
		return nil
	})
}

// WithZThreshold sets the overload-detection z-score threshold (paper
// default: 3.0).
func WithZThreshold(z float64) Option {
	return experimentOption("WithZThreshold", func(s *settings) error {
		if z <= 0 {
			return fmt.Errorf("ulba: WithZThreshold(%g) must be positive", z)
		}
		s.cfg.ZThreshold = z
		return nil
	})
}

// WithOSNoise injects up to sec seconds of deterministic pseudo-random
// system noise into every PE at every iteration.
func WithOSNoise(sec float64) Option {
	return experimentOption("WithOSNoise", func(s *settings) error {
		if sec < 0 {
			return fmt.Errorf("ulba: WithOSNoise(%g) must be non-negative", sec)
		}
		s.cfg.OSNoise = sec
		return nil
	})
}

// WithOverheadTerm toggles the Eq. 11 overhead estimate in the ULBA trigger
// threshold (Section III-C). Experiments default to including it.
func WithOverheadTerm(include bool) Option {
	return experimentOption("WithOverheadTerm", func(s *settings) error {
		s.cfg.IncludeOverhead = include
		return nil
	})
}

// WithRCB switches the partitioner to 1D recursive bisection (even split
// only), an ablation of the stripe prefix-sum partitioner. Incompatible
// with ULBA, which needs weighted targets.
func WithRCB(use bool) Option {
	return experimentOption("WithRCB", func(s *settings) error {
		s.cfg.UseRCB = use
		return nil
	})
}

// WithSeed sets the application instance seed. It is applied after every
// other option, so it composes with WithApp in any order.
func WithSeed(seed uint64) Option {
	return experimentOption("WithSeed", func(s *settings) error {
		s.seed = &seed
		return nil
	})
}

// WithTrigger installs a runtime trigger (when to balance, decided from the
// measured iteration times). Mutually exclusive with WithPlanner.
func WithTrigger(t Trigger) Option {
	return runOption("WithTrigger", func(s *settings) error {
		if t == nil {
			return fmt.Errorf("ulba: WithTrigger(nil)")
		}
		s.trigger = t
		return nil
	})
}

// WithPlanner installs a planner. For an Experiment or RuntimeExperiment
// the planner precomputes the LB schedule from the analytic model (WithModel
// is required unless the runtime workload implements ModeledWorkload) and
// the run replays it; for a Sweep the planner builds the ULBA schedule each
// instance is evaluated on. Mutually exclusive with WithTrigger.
func WithPlanner(pl Planner) Option {
	return sharedOption("WithPlanner", func(s *settings) error {
		if pl == nil {
			return fmt.Errorf("ulba: WithPlanner(nil)")
		}
		s.planner = pl
		return nil
	})
}

// WithModel attaches the analytic model parameters an Experiment's (or
// RuntimeExperiment's) planner plans against. A RuntimeExperiment whose
// workload implements ModeledWorkload may omit it: the model is then
// derived from the workload itself.
func WithModel(mp ModelParams) Option {
	return runOption("WithModel", func(s *settings) error {
		s.model = &mp
		return nil
	})
}

// WithWorkload selects the synthetic workload a RuntimeExperiment executes
// (see the Workload interface and WorkloadNames for the registry). The
// default is the linear-drift workload.
func WithWorkload(w Workload) Option {
	return runtimeOption("WithWorkload", func(s *settings) error {
		if w == nil {
			return fmt.Errorf("ulba: WithWorkload(nil)")
		}
		s.workload = w
		return nil
	})
}

// WithSpeeds makes the simulated cluster heterogeneous: PE r computes at
// speeds[r] times the reference rate of the cost model, so a rank with speed
// 2 finishes the same work in half the time (communication is unaffected).
// The slice length must equal the PE count. Load-balancing steps cut
// speed-proportional partitions — on a heterogeneous cluster the optimal
// work distribution is deliberately non-uniform (Lastovetsky & Szustak,
// "Model-based optimization of EULAG kernel on Intel Xeon Phi"). Nil keeps
// the homogeneous cluster, bit-identical to an all-ones vector.
func WithSpeeds(speeds []float64) Option {
	return runtimeOption("WithSpeeds", func(s *settings) error {
		if len(speeds) == 0 {
			return fmt.Errorf("ulba: WithSpeeds needs at least one speed")
		}
		s.speeds = append([]float64(nil), speeds...)
		return nil
	})
}

// WithWorkers bounds the number of concurrent runs or instance evaluations.
// n <= 0 selects GOMAXPROCS. Results never depend on the worker count.
func WithWorkers(n int) Option {
	return poolOption("WithWorkers", func(s *settings) error {
		s.workers = n
		return nil
	})
}

// WithAlphaGrid sets how many alpha values a Sweep scans per instance
// (paper: 100, uniformly over [0, 1], always including 0).
func WithAlphaGrid(n int) Option {
	return sweepOption("WithAlphaGrid", func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("ulba: WithAlphaGrid(%d) must be at least 1", n)
		}
		s.alphaGrid = n
		return nil
	})
}
