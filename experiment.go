package ulba

import (
	"context"
	"fmt"

	"ulba/internal/lb"
	"ulba/internal/schedule"
)

// Experiment is one fully validated application run: the erosion instance,
// the LB method, and the when-to-balance policy (a runtime Trigger or a
// planned Schedule). Build it with New; a constructed Experiment is
// immutable and safe for concurrent use.
type Experiment struct {
	cfg       RunConfig
	trigger   Trigger
	planner   Planner
	planned   Schedule
	workers   int
	predicted float64
	hasModel  bool
}

// New builds an Experiment for p PEs. With no options it reproduces
// DefaultRunConfig(p, Standard): the paper's hyper-parameters (alpha 0.4,
// z-score threshold 3.0, adaptive degradation trigger, Eq. 11 overhead term
// included). Every option is validated eagerly, so a non-nil *Experiment is
// always runnable.
func New(p int, opts ...Option) (*Experiment, error) {
	if p <= 0 {
		return nil, fmt.Errorf("ulba: experiment needs a positive PE count, got %d", p)
	}
	s := settings{cfg: DefaultRunConfig(p, Standard)}
	if err := applyOptions(&s, scopeExperiment, "Experiment", opts); err != nil {
		return nil, err
	}
	if s.seed != nil {
		s.cfg.App.Seed = *s.seed
	}

	e := &Experiment{workers: s.workers, planner: s.planner, trigger: s.trigger}
	if s.planner != nil && s.trigger != nil {
		return nil, fmt.Errorf("ulba: WithPlanner and WithTrigger are mutually exclusive: both decide when to balance")
	}
	switch {
	case s.planner != nil:
		if s.model == nil {
			return nil, fmt.Errorf("ulba: WithPlanner requires WithModel: the planner plans against the analytic model parameters")
		}
		sched, err := s.planner.Plan(*s.model, s.cfg.Iterations)
		if err != nil {
			return nil, fmt.Errorf("ulba: planner %q: %w", s.planner.Name(), err)
		}
		e.planned = normalizeSchedule(sched, s.cfg.Iterations)
		e.trigger = ScheduleTrigger{Schedule: e.planned}
		s.cfg.TriggerFactory = e.trigger.New
		// The plan already contains the (possibly absent) first step; a
		// forced warmup call would distort it.
		s.cfg.WarmupLB = -1
		// Model-side prediction for PlannedTotalTime: Eq. 4 on the planned
		// schedule under the *run's* configured method — Eq. 2 per
		// iteration for the standard method, Eq. 5 at the run's alpha for
		// ULBA (an adaptive-alpha run is predicted at its initial alpha).
		// The schedule itself was planned on the model as given, so the
		// prediction matches what Run will replay.
		mp := *s.model
		if s.cfg.Iterations > 0 {
			mp.Gamma = s.cfg.Iterations
		}
		if s.cfg.Method == ULBA {
			e.predicted = schedule.TotalTimeULBA(mp.WithAlpha(s.cfg.Alpha), e.planned)
		} else {
			e.predicted = schedule.TotalTimeStd(mp, e.planned)
		}
		e.hasModel = true
	case s.trigger != nil:
		if pt, ok := s.trigger.(PeriodicTrigger); ok && pt.Every <= 0 {
			return nil, fmt.Errorf("ulba: periodic trigger needs Every > 0, got %d", pt.Every)
		}
		s.cfg.TriggerFactory = s.trigger.New
		if dropsWarmup(s.trigger) {
			s.cfg.WarmupLB = -1
		}
	}

	s.cfg = s.cfg.Normalized()
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	e.cfg = s.cfg
	return e, nil
}

// Config returns a copy of the underlying run configuration.
func (e *Experiment) Config() RunConfig { return e.cfg }

// Trigger returns the installed trigger, or nil when the run uses the
// default degradation rule through the config's TriggerKind.
func (e *Experiment) Trigger() Trigger { return e.trigger }

// PlannedSchedule returns the LB schedule precomputed by WithPlanner, or
// nil for reactive (trigger-driven) experiments. The slice is a copy:
// mutating it cannot change the plan the run replays.
func (e *Experiment) PlannedSchedule() Schedule {
	if e.planned == nil {
		return nil
	}
	return append(Schedule(nil), e.planned...)
}

// PlannedTotalTime returns the analytic model's predicted total parallel
// time (Eq. 4) for the schedule the planner precomputed, evaluated under
// the experiment's configured method — Eq. 2 for Standard, Eq. 5 at the
// run's alpha for ULBA (adaptive-alpha runs are predicted at their initial
// alpha) — and whether such a prediction exists. It reports false for
// trigger-driven experiments, which have no model to predict from.
// Comparing the prediction against Run's measured TotalTime shows how far
// the simulated application drifts from the analytic model.
func (e *Experiment) PlannedTotalTime() (float64, bool) { return e.predicted, e.hasModel }

// Run executes the experiment on the simulated cluster. Runs are
// deterministic: the same Experiment always produces the same Result.
// Cancelling the context abandons the run and returns ctx.Err(); the
// simulated ranks finish in the background and are discarded.
func (e *Experiment) Run(ctx context.Context) (RunResult, error) {
	if err := ctx.Err(); err != nil {
		return RunResult{}, err
	}
	type outcome struct {
		res RunResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := lb.Run(e.cfg)
		done <- outcome{res, err}
	}()
	select {
	case <-ctx.Done():
		return RunResult{}, ctx.Err()
	case o := <-done:
		return o.res, o.err
	}
}

// MethodComparison holds the configured method and the standard-method
// baseline executed on the identical instance. The physics are identical
// across methods (erosion randomness is a pure function of cell coordinates
// and time), so every difference comes from the LB decisions alone.
type MethodComparison struct {
	Baseline RunResult // the standard method
	Result   RunResult // the configured method
}

// Gain is the fractional improvement of the configured method over the
// standard baseline: (baseline - result) / baseline total time.
func (c MethodComparison) Gain() float64 {
	if c.Baseline.TotalTime == 0 {
		return 0
	}
	return (c.Baseline.TotalTime - c.Result.TotalTime) / c.Baseline.TotalTime
}

// CallsAvoided is the fraction of the baseline's LB calls the configured
// method did not need (paper Fig. 4b: 62.5%).
func (c MethodComparison) CallsAvoided() float64 {
	if c.Baseline.LBCount() == 0 {
		return 0
	}
	return 1 - float64(c.Result.LBCount())/float64(c.Baseline.LBCount())
}

// Compare runs the experiment and its standard-method baseline on the same
// instance and returns both results. With WithWorkers(n >= 2) the two runs
// execute concurrently; the outcome is identical either way.
func (e *Experiment) Compare(ctx context.Context) (MethodComparison, error) {
	base := *e
	base.cfg.Method = lb.Standard
	base.cfg.AdaptiveAlpha = false

	if e.workers == 1 {
		baseRes, err := base.Run(ctx)
		if err != nil {
			return MethodComparison{}, err
		}
		res, err := e.Run(ctx)
		if err != nil {
			return MethodComparison{}, err
		}
		return MethodComparison{Baseline: baseRes, Result: res}, nil
	}

	var cmp MethodComparison
	var baseErr, runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		cmp.Baseline, baseErr = base.Run(ctx)
	}()
	cmp.Result, runErr = e.Run(ctx)
	<-done
	if baseErr != nil {
		return MethodComparison{}, baseErr
	}
	if runErr != nil {
		return MethodComparison{}, runErr
	}
	return cmp, nil
}
