package ulba_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocLinks fails on broken intra-repo links in the documentation set:
// every relative markdown link target (file, directory, or file#anchor)
// must exist in the working tree. External links (http, mailto) and pure
// anchors are out of scope. CI runs this in the docs job, so a renamed or
// deleted file cannot silently orphan its references.
func TestDocLinks(t *testing.T) {
	docs := []string{"README.md", "API.md", "DESIGN.md", "REPRODUCE.md", "ROADMAP.md"}
	link := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("documentation file %s is missing: %v", doc, err)
			continue
		}
		for _, m := range link.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop an anchor suffix
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s links to %q, which does not exist", doc, m[1])
			}
		}
	}
}
