package ulba_test

import (
	"context"
	"fmt"
	"log"

	"ulba"
)

// The workload registry mirrors the planner and trigger registries: every
// scenario generator is selectable by name, e.g. from a CLI -workload flag,
// and third parties can register their own.
func ExampleWorkloadNames() {
	fmt.Println(ulba.WorkloadNames())

	w, err := ulba.NewWorkload("bursty")
	if err != nil {
		log.Fatal(err)
	}
	items, _, err := w.Instantiate(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d items on 8 PEs\n", w.Name(), items)
	// Output:
	// [amr bursty exponential linear minife outlier stationary target trace]
	// bursty: 512 items on 8 PEs
}

// A RuntimeExperiment actually executes a workload on the simulated
// cluster under a runtime trigger, reporting the measured timeline against
// the no-LB baseline and the perfect-knowledge bound. Runs are
// deterministic: this example's output is bit-stable.
func ExampleNewRuntime() {
	exp, err := ulba.NewRuntime(4,
		ulba.WithWorkload(ulba.LinearWorkload{Seed: 1}),
		ulba.WithIterations(100),
		ulba.WithTrigger(ulba.DegradationTrigger{}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LB calls: %d\n", res.Timeline.LBCount())
	fmt.Printf("beats no-LB: %v\n", res.Gain() > 0)
	fmt.Printf("bounded by perfect knowledge: %v\n",
		res.Timeline.TotalTime >= res.PerfectTime)
	// Output:
	// LB calls: 17
	// beats no-LB: true
	// bounded by perfect knowledge: true
}

// Planning on the analytic model and replaying the plan at runtime is the
// paper's anticipation move: a ModeledWorkload derives its own Table I
// parameters, so no explicit WithModel is needed.
func ExampleNewRuntime_planner() {
	exp, err := ulba.NewRuntime(4,
		ulba.WithWorkload(ulba.LinearWorkload{Seed: 1}),
		ulba.WithIterations(100),
		ulba.WithPlanner(ulba.PeriodicPlanner{Every: 20}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", exp.PlannedSchedule())

	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replayed LB steps:", res.Timeline.LBCount())
	// Output:
	// plan: LB@[20 40 60 80]
	// replayed LB steps: 4
}

// A RuntimeSweep fans scenarios over a bounded worker pool; the aggregate
// is bit-identical for every worker count.
func ExampleNewRuntimeSweep() {
	var exps []*ulba.RuntimeExperiment
	for seed := uint64(0); seed < 4; seed++ {
		exp, err := ulba.NewRuntime(4,
			ulba.WithWorkload(ulba.BurstyWorkload{Seed: seed}),
			ulba.WithIterations(80),
		)
		if err != nil {
			log.Fatal(err)
		}
		exps = append(exps, exp)
	}
	sweep, err := ulba.NewRuntimeSweep(ulba.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	sum, _, err := sweep.Run(context.Background(), exps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenarios: %d\n", sum.Scenarios)
	fmt.Printf("every scenario beat no-LB: %v\n", sum.Gains.Min > 0)
	// Output:
	// scenarios: 4
	// every scenario beat no-LB: true
}
