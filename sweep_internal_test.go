package ulba

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// collectSweep's delivered-short branch: a stream that closes before
// delivering every instance, with no error and a live context, is an
// invariant violation the caller must hear about.
func TestCollectSweepDeliveredShort(t *testing.T) {
	results := make(chan SweepResult, 1)
	results <- SweepResult{Index: 0}
	close(results)
	_, _, err := collectSweep(context.Background(), func() {}, results, 3)
	if err == nil || !strings.Contains(err.Error(), "delivered 1 of 3") {
		t.Errorf("short stream returned %v, want delivered 1 of 3", err)
	}
}

// A short stream under a cancelled caller context reports the context
// error, not the delivery mismatch.
func TestCollectSweepShortPrefersContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := make(chan SweepResult)
	close(results)
	_, _, err := collectSweep(ctx, func() {}, results, 2)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled short stream returned %v, want context.Canceled", err)
	}
}

// When several instances error, the lowest input index wins regardless of
// completion order, and the producer is cancelled on the first error seen.
func TestCollectSweepLowestIndexErrorWins(t *testing.T) {
	errHigh := errors.New("high index failed")
	errLow := errors.New("low index failed")
	results := make(chan SweepResult, 3)
	results <- SweepResult{Index: 5, Err: errHigh}
	results <- SweepResult{Index: 1, Err: errLow}
	results <- SweepResult{Index: 0}
	close(results)

	cancelled := 0
	_, _, err := collectSweep(context.Background(), func() { cancelled++ }, results, 6)
	if !errors.Is(err, errLow) {
		t.Errorf("got %v, want the lowest-index error %v", err, errLow)
	}
	if cancelled != 2 {
		t.Errorf("cancel called %d times, want once per errored result (2)", cancelled)
	}
}
